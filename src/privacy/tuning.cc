#include "privacy/tuning.h"

#include <cmath>

#include "common/statistics.h"
#include "privacy/laplace_mechanism.h"

namespace privateclean {

Result<double> CountErrorBound(double p, size_t dataset_size,
                               double confidence) {
  if (!(p >= 0.0 && p < 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1)");
  }
  if (dataset_size == 0) {
    return Status::InvalidArgument("dataset size must be > 0");
  }
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(confidence));
  return z / (1.0 - p) *
         std::sqrt(1.0 / (4.0 * static_cast<double>(dataset_size)));
}

Result<double> SumErrorBound(double p, double b, double mean,
                             double variance, size_t dataset_size,
                             double confidence) {
  if (!(p >= 0.0 && p < 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1)");
  }
  if (b < 0.0) return Status::InvalidArgument("b must be >= 0");
  if (variance < 0.0) {
    return Status::InvalidArgument("variance must be >= 0");
  }
  if (dataset_size == 0) {
    return Status::InvalidArgument("dataset size must be > 0");
  }
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(confidence));
  double s = static_cast<double>(dataset_size);
  return z / (1.0 - p) *
         std::sqrt(std::abs(mean) / s + 4.0 * (variance + 2.0 * b * b) / s);
}

Result<TuningResult> TunePrivacyParameters(const Table& table,
                                           double max_count_error,
                                           double confidence) {
  if (!(max_count_error > 0.0)) {
    return Status::InvalidArgument("max_count_error must be > 0");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot tune on an empty relation");
  }
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(confidence));
  double s = static_cast<double>(table.num_rows());

  // Step 1 (Appendix E): p = 1 − z · sqrt(1/(4·S·error²)).
  double p = 1.0 - z * std::sqrt(1.0 / (4.0 * s * max_count_error *
                                        max_count_error));
  if (p <= 0.0) {
    return Status::InvalidArgument(
        "target count error " + std::to_string(max_count_error) +
        " is unattainable at this dataset size even without randomization "
        "(need a larger relation or a looser error target)");
  }

  TuningResult result;
  result.p = p;
  // ε implied by p; p < 1 here so the log argument exceeds 1 and ε > 0.
  result.per_attribute_epsilon = std::log(3.0 / p - 2.0);

  // Step 3: b_j = Δ_j / ε so each numerical attribute matches ε.
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind != AttributeKind::kNumerical) continue;
    PCLEAN_ASSIGN_OR_RETURN(double delta, ColumnSensitivity(table.column(i)));
    double b = (result.per_attribute_epsilon > 0.0)
                   ? delta / result.per_attribute_epsilon
                   : 0.0;
    result.numeric_b.emplace(field.name, b);
  }
  return result;
}

GrrParams ToGrrParams(const TuningResult& tuning) {
  GrrParams params;
  params.default_p = tuning.p;
  params.numeric_b = tuning.numeric_b;
  // default_b stays unset: every numerical attribute got an explicit b.
  return params;
}

}  // namespace privateclean
