#ifndef PRIVATECLEAN_PRIVACY_PRIVACY_PARAMS_H_
#define PRIVATECLEAN_PRIVACY_PRIVACY_PARAMS_H_

#include <string>
#include <unordered_map>

#include "common/result.h"

namespace privateclean {

/// Conversions between the user-facing privacy knobs and ε (local
/// differential privacy), per the paper's Lemma 1 and Proposition 1.

/// ε achieved by randomized response with randomization probability p:
/// ε = ln(3/p − 2) (Lemma 1's worst case, domain size 2). Requires
/// p ∈ (0, 1]. p = 1 gives ε = 0 (every value replaced by a uniform
/// draw — maximal privacy); p → 0 gives ε → ∞.
Result<double> EpsilonForRandomizedResponse(double p);

/// Inverse of the above: the randomization probability that achieves ε:
/// p = 3 / (exp(ε) + 2). Requires ε >= 0.
Result<double> RandomizationForEpsilon(double epsilon);

/// ε achieved by the Laplace mechanism with scale b on an attribute of
/// sensitivity Δ (max − min): ε = Δ / b. Requires Δ >= 0, b > 0.
Result<double> EpsilonForLaplace(double delta, double b);

/// The Laplace scale achieving ε on sensitivity Δ: b = Δ / ε.
/// Requires Δ >= 0, ε > 0.
Result<double> LaplaceScaleForEpsilon(double delta, double epsilon);

/// Per-attribute GRR parameters (paper §4.2.3): the randomization
/// probability p_i for each discrete attribute and the Laplace scale b_i
/// for each numerical attribute. Attributes missing from the maps are an
/// error at GRR time — privacy must be explicit for every column, because
/// one non-private column de-privatizes the rest (Theorem 1 discussion).
struct GrrParams {
  std::unordered_map<std::string, double> discrete_p;
  std::unordered_map<std::string, double> numeric_b;

  /// Uniform parameters for every attribute of the respective kind. The
  /// maps are filled in by ApplyGrr from the input schema when a uniform
  /// value is set and the map entry is absent.
  double default_p = -1.0;  ///< < 0 means "no default".
  double default_b = -1.0;  ///< < 0 means "no default".

  /// Convenience: same p for all discrete and same b for all numerical
  /// attributes.
  static GrrParams Uniform(double p, double b);
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_PRIVACY_PARAMS_H_
