#include "privacy/size_bound.h"

#include <algorithm>
#include <cmath>

namespace privateclean {

namespace {

Status ValidateCommon(size_t num_distinct, double p) {
  if (num_distinct < 1) {
    return Status::InvalidArgument("domain must have at least one value");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<double> DomainPreservationLowerBound(size_t num_distinct, double p,
                                            size_t dataset_size) {
  PCLEAN_RETURN_NOT_OK(ValidateCommon(num_distinct, p));
  if (dataset_size < 1) {
    return Status::InvalidArgument("dataset size must be >= 1");
  }
  double n = static_cast<double>(num_distinct);
  double s = static_cast<double>(dataset_size);
  double failure = p * (n - 1.0) * std::pow(1.0 - p / n, s - 1.0);
  return std::clamp(1.0 - failure, 0.0, 1.0);
}

Result<size_t> MinDatasetSizeForDomainPreservation(size_t num_distinct,
                                                   double p, double alpha) {
  PCLEAN_RETURN_NOT_OK(ValidateCommon(num_distinct, p));
  if (!(p > 0.0)) {
    return Status::InvalidArgument("Theorem 2 requires p > 0");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  double n = static_cast<double>(num_distinct);
  double log_term = std::log(p * n / alpha);
  if (log_term <= 0.0) return 1;
  return static_cast<size_t>(std::ceil(n / p * log_term));
}

Result<size_t> MinDatasetSizeExact(size_t num_distinct, double p,
                                   double alpha) {
  PCLEAN_RETURN_NOT_OK(ValidateCommon(num_distinct, p));
  if (!(p > 0.0)) {
    return Status::InvalidArgument("exact bound requires p > 0");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  double n = static_cast<double>(num_distinct);
  if (num_distinct == 1) return 1;  // A single value cannot be masked.
  double failure_at_one = p * (n - 1.0);
  if (failure_at_one <= alpha) return 1;
  // Solve p(N-1)(1 - p/N)^(S-1) <= alpha for S.
  double s = 1.0 + std::log(alpha / failure_at_one) / std::log(1.0 - p / n);
  return static_cast<size_t>(std::ceil(s));
}

Result<double> ExpectedRegenerations(size_t num_distinct, double p,
                                     size_t dataset_size) {
  PCLEAN_ASSIGN_OR_RETURN(
      double preserve,
      DomainPreservationLowerBound(num_distinct, p, dataset_size));
  if (preserve <= 0.0) {
    return Status::FailedPrecondition(
        "domain preservation probability bound is zero; dataset too small");
  }
  return 1.0 / preserve;
}

}  // namespace privateclean
