#include "privacy/mechanism.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/privacy_params.h"

namespace privateclean {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckDomainSize(const char* name, size_t n) {
  if (n == 0) {
    return Status::InvalidArgument(std::string(name) +
                                   " mechanism needs a non-empty domain");
  }
  return Status::OK();
}

/// The paper's mechanism (§4.2.1): keep with probability 1-p, redraw
/// uniformly with probability p. Accounting uses the paper's Lemma 1
/// formula ln(3/p - 2), independent of the domain size.
class GrrMechanism final : public Mechanism {
 public:
  explicit GrrMechanism(double p) : p_(p) {}

  const char* name() const override { return "grr"; }
  double param() const override { return p_; }
  MechanismSpec Spec() const override { return MechanismSpec{"grr", {}}; }

  Result<double> ReplacementProbability(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    return p_;
  }

  Result<double> Epsilon(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    if (p_ <= 0.0) return kInf;  // No randomization: non-private.
    return EpsilonForRandomizedResponse(p_);
  }

  Status PerturbShard(Column* column, const Domain& domain, Rng& rng,
                      size_t begin, size_t end,
                      const uint32_t* original_indices, uint8_t* coverage,
                      const uint32_t* domain_codes) const override {
    // Delegate to the legacy kernel so the pre-mechanism-interface draw
    // sequence and floating-point path are reproduced byte-for-byte
    // (proven by the golden pipeline and the differential test in
    // tests/mechanism_test.cc).
    return ApplyRandomizedResponseShard(column, domain, p_, rng, begin, end,
                                        original_indices, coverage,
                                        domain_codes);
  }

 private:
  double p_;
};

/// Holohan–Leith–Mason optimal generalized RR: for target ε on an
/// n-value domain, diagonal e^ε/(e^ε+n-1) and off-diagonal
/// 1/(e^ε+n-1) — the utility-maximizing ε-LDP mechanism (the tight
/// bound of arXiv 2112.07397 holds with equality). Equivalent to
/// uniform replacement with p_eff = n/(e^ε+n-1), so it reuses the
/// legacy Bernoulli + UniformInt kernel with that probability.
class HlmMechanism final : public Mechanism {
 public:
  explicit HlmMechanism(double epsilon) : epsilon_(epsilon) {}

  const char* name() const override { return "hlm"; }
  double param() const override { return epsilon_; }
  MechanismSpec Spec() const override { return MechanismSpec{"hlm", {}}; }

  Result<double> ReplacementProbability(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    const double nd = static_cast<double>(n);
    // exp overflow gives +inf and p_eff -> 0: arbitrarily large ε
    // degrades gracefully to "keep everything".
    return nd / (std::exp(epsilon_) + nd - 1.0);
  }

  Result<double> Epsilon(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    // A single-value domain carries no information; the mechanism
    // reveals nothing regardless of the target.
    if (n == 1) return 0.0;
    return epsilon_;  // Attained exactly: ln(diag/off) == ε.
  }

  Status PerturbShard(Column* column, const Domain& domain, Rng& rng,
                      size_t begin, size_t end,
                      const uint32_t* original_indices, uint8_t* coverage,
                      const uint32_t* domain_codes) const override {
    PCLEAN_ASSIGN_OR_RETURN(double p_eff,
                            ReplacementProbability(domain.size()));
    return ApplyRandomizedResponseShard(column, domain, p_eff, rng, begin,
                                        end, original_indices, coverage,
                                        domain_codes);
  }

 private:
  double epsilon_;
};

/// Subsample-then-randomize (arXiv 1708.01884): a Bernoulli(β) draw
/// keeps the row in the randomization pool — pooled rows go through
/// inner RR(p0), the rest are replaced by a uniform domain draw (their
/// true value never reaches the output). The combined matrix is still
/// diagonal-constant with p_eff = 1 - β(1 - p0).
class SamplingMechanism final : public Mechanism {
 public:
  SamplingMechanism(double p0, double beta) : p0_(p0), beta_(beta) {}

  const char* name() const override { return "sampling"; }
  double param() const override { return p0_; }
  MechanismSpec Spec() const override {
    return MechanismSpec{"sampling", {{"beta", beta_}}};
  }

  Result<double> ReplacementProbability(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    return 1.0 - beta_ * (1.0 - p0_);
  }

  Result<double> Epsilon(size_t n) const override {
    PCLEAN_RETURN_NOT_OK(CheckDomainSize(name(), n));
    if (n == 1) return 0.0;
    // Exact ε of the combined diagonal-constant matrix: ln(diag/off).
    // The amplification bound ln(1 + β(e^{ε0} - 1)) dominates it (unit-
    // tested in accountant_test), and stays finite even where the bound
    // degenerates — p0 == 0 with β < 1 keeps pooled rows verbatim
    // (inner ε0 = ∞) yet the (1-β) uniform replacement still hides them.
    PCLEAN_ASSIGN_OR_RETURN(ConfusionMatrix m, Confusion(n));
    if (m.off_diagonal <= 0.0) return kInf;  // β == 1 and p0 == 0.
    if (m.diagonal <= m.off_diagonal) return 0.0;  // p0 == 1: pure noise.
    return std::log(m.diagonal / m.off_diagonal);
  }

  Status PerturbShard(Column* column, const Domain& domain, Rng& rng,
                      size_t begin, size_t end,
                      const uint32_t* original_indices, uint8_t* coverage,
                      const uint32_t* domain_codes) const override {
    const double beta = beta_;
    const double p0 = p0_;
    // Draw sequence (deliberately distinct from grr/hlm): Bernoulli(β)
    // sampling decision first; pooled rows then follow the inner RR
    // sequence exactly (Bernoulli(p0), uniform draw only on
    // replacement); non-pooled rows consume one uniform draw.
    return PerturbCodesShard(
        column, domain,
        [beta, p0](Rng& r, size_t n) -> size_t {
          if (!r.Bernoulli(beta)) {
            return static_cast<size_t>(r.UniformInt(n));
          }
          if (p0 == 0.0 || !r.Bernoulli(p0)) return kKeepRowDraw;
          return static_cast<size_t>(r.UniformInt(n));
        },
        rng, begin, end, original_indices, coverage, domain_codes);
  }

 private:
  double p0_;
  double beta_;
};

Status UnknownMechanism(const std::string& name) {
  std::string known;
  for (const std::string& k : KnownMechanisms()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  return Status::FailedPrecondition("unknown mechanism '" + name +
                                    "'; this build supports: " + known);
}

/// Per-family parameter schema: required/allowed family-level keys.
Status CheckSpecKeys(const MechanismSpec& spec,
                     const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : spec.params) {
    (void)value;
    bool ok = false;
    for (const std::string& a : allowed) ok = ok || key == a;
    if (!ok) {
      return Status::InvalidArgument("mechanism '" + spec.name +
                                     "' takes no parameter '" + key + "'");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<double> ConfusionMatrix::Row(size_t row) const {
  std::vector<double> out(n, off_diagonal);
  if (row < n) out[row] = diagonal;
  return out;
}

std::vector<double> ConfusionMatrix::Column(size_t col) const {
  // Diagonal-constant matrices are symmetric, but derive the column
  // honestly so callers need not rely on that.
  std::vector<double> out(n, off_diagonal);
  if (col < n) out[col] = diagonal;
  return out;
}

std::vector<std::vector<double>> ConfusionMatrix::Dense() const {
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Row(i));
  return out;
}

Status Mechanism::NoiseNumericShard(Column* column, double b, Rng& rng,
                                    size_t begin, size_t end) const {
  return ApplyLaplaceMechanismShard(column, b, rng, begin, end);
}

Result<ConfusionMatrix> Mechanism::Confusion(size_t n) const {
  PCLEAN_ASSIGN_OR_RETURN(double p_eff, ReplacementProbability(n));
  ConfusionMatrix m;
  m.n = n;
  m.off_diagonal = p_eff / static_cast<double>(n);
  m.diagonal = (1.0 - p_eff) + m.off_diagonal;
  return m;
}

Result<TransitionProbabilities> Mechanism::Transitions(double l,
                                                       double n) const {
  if (!(n >= 1.0)) return Status::InvalidArgument("N must be >= 1");
  PCLEAN_ASSIGN_OR_RETURN(
      double p_eff, ReplacementProbability(static_cast<size_t>(n + 0.5)));
  // Shared with the legacy path: for "grr" p_eff is the stored p, so
  // this is the exact pre-mechanism-interface computation.
  return ComputeTransitionProbabilities(p_eff, l, n);
}

const std::vector<std::string>& KnownMechanisms() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"grr", "hlm", "sampling"};
  return *names;
}

bool IsKnownMechanism(const std::string& name) {
  for (const std::string& k : KnownMechanisms()) {
    if (k == name) return true;
  }
  return false;
}

Status ValidateMechanismSpec(const MechanismSpec& spec) {
  if (!IsKnownMechanism(spec.name)) return UnknownMechanism(spec.name);
  if (spec.name == "sampling") {
    PCLEAN_RETURN_NOT_OK(CheckSpecKeys(spec, {"beta"}));
    auto it = spec.params.find("beta");
    if (it == spec.params.end()) {
      return Status::InvalidArgument(
          "mechanism 'sampling' requires a beta parameter");
    }
    if (!(it->second > 0.0 && it->second <= 1.0)) {
      return Status::InvalidArgument(
          "sampling rate beta must be in (0, 1], got " +
          FormatDouble(it->second));
    }
    return Status::OK();
  }
  return CheckSpecKeys(spec, {});
}

Result<MechanismPtr> MakeMechanism(const MechanismSpec& spec, double param) {
  PCLEAN_RETURN_NOT_OK(ValidateMechanismSpec(spec));
  if (spec.name == "grr") {
    if (!(param >= 0.0 && param <= 1.0)) {
      return Status::InvalidArgument(
          "grr randomization probability must be in [0, 1], got " +
          FormatDouble(param));
    }
    return MechanismPtr(std::make_shared<GrrMechanism>(param));
  }
  if (spec.name == "hlm") {
    if (!(param >= 0.0) || !std::isfinite(param)) {
      return Status::InvalidArgument(
          "hlm target epsilon must be finite and >= 0, got " +
          FormatDouble(param));
    }
    return MechanismPtr(std::make_shared<HlmMechanism>(param));
  }
  if (spec.name == "sampling") {
    if (!(param >= 0.0 && param <= 1.0)) {
      return Status::InvalidArgument(
          "sampling inner randomization probability must be in [0, 1], "
          "got " +
          FormatDouble(param));
    }
    return MechanismPtr(
        std::make_shared<SamplingMechanism>(param, spec.params.at("beta")));
  }
  return UnknownMechanism(spec.name);
}

std::string RenderMechanismSpec(const MechanismSpec& spec) {
  std::string out = spec.name;
  for (const auto& [key, value] : spec.params) {
    out += ' ';
    out += key;
    out += '=';
    out += FormatDouble(value);
  }
  return out;
}

Result<MechanismSpec> ParseMechanismSpec(const std::string& text) {
  MechanismSpec spec;
  spec.name.clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(' ', pos);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    if (spec.name.empty()) {
      if (token.find('=') != std::string::npos) {
        return Status::InvalidArgument(
            "mechanism spec must start with a family name, got '" + token +
            "'");
      }
      spec.name = token;
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return Status::InvalidArgument("malformed mechanism parameter '" +
                                     token + "' (expected key=value)");
    }
    PCLEAN_ASSIGN_OR_RETURN(double value, ParseDouble(token.substr(eq + 1)));
    spec.params[token.substr(0, eq)] = value;
  }
  if (spec.name.empty()) {
    return Status::InvalidArgument("empty mechanism spec");
  }
  return spec;
}

Result<double> EpsilonFromConfusionMatrix(
    const std::vector<std::vector<double>>& matrix) {
  const size_t n = matrix.size();
  if (n == 0) {
    return Status::InvalidArgument("confusion matrix must be non-empty");
  }
  constexpr double kRowSumTolerance = 1e-9;
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i].size() != n) {
      return Status::InvalidArgument(
          "confusion matrix must be square; row " + std::to_string(i) +
          " has " + std::to_string(matrix[i].size()) + " of " +
          std::to_string(n) + " entries");
    }
    double sum = 0.0;
    for (double v : matrix[i]) {
      if (!(v >= 0.0)) {
        return Status::InvalidArgument(
            "confusion matrix entries must be >= 0 (row " +
            std::to_string(i) + ")");
      }
      sum += v;
    }
    if (std::abs(sum - 1.0) > kRowSumTolerance) {
      return Status::InvalidArgument(
          "confusion matrix row " + std::to_string(i) + " sums to " +
          FormatDouble(sum) + ", not 1");
    }
  }
  double epsilon = 0.0;
  for (size_t j = 0; j < n; ++j) {
    double lo = kInf;
    double hi = 0.0;
    for (size_t i = 0; i < n; ++i) {
      lo = std::min(lo, matrix[i][j]);
      hi = std::max(hi, matrix[i][j]);
    }
    if (hi == 0.0) continue;  // Output never occurs; constrains nothing.
    if (lo == 0.0) {
      return Status::FailedPrecondition(
          "confusion matrix column " + std::to_string(j) +
          " mixes zero and non-zero entries: the likelihood ratio is "
          "unbounded, so no finite epsilon exists");
    }
    epsilon = std::max(epsilon, std::log(hi / lo));
  }
  return epsilon;
}

Result<double> SamplingAmplifiedEpsilon(double inner_epsilon, double beta) {
  if (!(inner_epsilon >= 0.0)) {
    return Status::InvalidArgument("inner epsilon must be >= 0, got " +
                                   FormatDouble(inner_epsilon));
  }
  if (!(beta > 0.0 && beta <= 1.0)) {
    return Status::InvalidArgument("sampling rate beta must be in (0, 1], "
                                   "got " +
                                   FormatDouble(beta));
  }
  // std::expm1/log1p keep the bound accurate for small ε0·β.
  return std::log1p(beta * std::expm1(inner_epsilon));
}

}  // namespace privateclean
