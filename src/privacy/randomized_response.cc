#include "privacy/randomized_response.h"

namespace privateclean {

Status ApplyRandomizedResponse(Column* column, const Domain& domain,
                               double p, Rng& rng) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        "randomization probability must be in [0, 1], got " +
        std::to_string(p));
  }
  if (domain.empty()) {
    return Status::FailedPrecondition(
        "randomized response requires a non-empty domain");
  }
  if (p == 0.0) return Status::OK();
  for (size_t r = 0; r < column->size(); ++r) {
    if (!rng.Bernoulli(p)) continue;
    const Value& replacement =
        domain.value(static_cast<size_t>(rng.UniformInt(domain.size())));
    PCLEAN_RETURN_NOT_OK(column->SetValue(r, replacement));
  }
  return Status::OK();
}

Result<TransitionProbabilities> ComputeTransitionProbabilities(double p,
                                                               double l,
                                                               double n) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1]");
  }
  if (!(n >= 1.0)) {
    return Status::InvalidArgument("N must be >= 1");
  }
  if (!(l >= 0.0 && l <= n)) {
    return Status::InvalidArgument("l must be in [0, N]");
  }
  TransitionProbabilities t;
  t.true_positive = (1.0 - p) + p * l / n;
  t.false_positive = p * l / n;
  t.true_negative = (1.0 - p) + p * (n - l) / n;
  t.false_negative = p * (n - l) / n;
  return t;
}

}  // namespace privateclean
