#include "privacy/randomized_response.h"

namespace privateclean {

Status ApplyRandomizedResponse(Column* column, const Domain& domain,
                               double p, Rng& rng) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  PCLEAN_ASSIGN_OR_RETURN(std::vector<uint32_t> domain_codes,
                          PrepareDomainCodes(column, domain));
  PCLEAN_RETURN_NOT_OK(ApplyRandomizedResponseShard(
      column, domain, p, rng, 0, column->size(), nullptr, nullptr,
      domain_codes.empty() ? nullptr : domain_codes.data()));
  column->RecomputeNullCount();
  return Status::OK();
}

Result<std::vector<uint32_t>> PrepareDomainCodes(Column* column,
                                                 const Domain& domain) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (column->type() != ValueType::kString) return std::vector<uint32_t>{};
  std::vector<uint32_t> codes(domain.size(), kNullCode);
  for (size_t j = 0; j < domain.size(); ++j) {
    const Value& v = domain.value(j);
    if (v.is_null()) continue;  // Stays kNullCode: the null member.
    if (v.type() != ValueType::kString) {
      return Status::InvalidArgument(
          std::string("cannot set ") + ValueTypeToString(v.type()) +
          " value in string column");
    }
    codes[j] = column->InternString(v.AsString());
  }
  return codes;
}

Status ApplyRandomizedResponseShard(Column* column, const Domain& domain,
                                    double p, Rng& rng, size_t begin,
                                    size_t end,
                                    const uint32_t* original_indices,
                                    uint8_t* coverage,
                                    const uint32_t* domain_codes) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        "randomization probability must be in [0, 1], got " +
        std::to_string(p));
  }
  if (domain.empty()) {
    return Status::FailedPrecondition(
        "randomized response requires a non-empty domain");
  }
  if (end > column->size() || begin > end) {
    return Status::OutOfRange("randomization range out of bounds");
  }
  if (coverage != nullptr && original_indices == nullptr) {
    return Status::InvalidArgument(
        "coverage tracking requires the original domain indices");
  }
  if (column->type() == ValueType::kString && domain_codes == nullptr) {
    return Status::InvalidArgument(
        "string columns require the PrepareDomainCodes table");
  }

  uint8_t* valid = column->mutable_validity()->data();
  const size_t n = domain.size();

  if (column->type() == ValueType::kString) {
    // Dictionary fast path: a replacement is one table lookup and one
    // aligned 4-byte store. The draw sequence (one Bernoulli, then one
    // uniform draw only on replacement) is shared with the boxed path
    // below, so both produce bit-identical columns from the same stream.
    uint32_t* codes = column->mutable_codes()->data();
    for (size_t r = begin; r < end; ++r) {
      if (p == 0.0 || !rng.Bernoulli(p)) {
        if (coverage != nullptr && original_indices[r] != UINT32_MAX) {
          coverage[original_indices[r]] = 1;
        }
        continue;
      }
      size_t j = static_cast<size_t>(rng.UniformInt(n));
      uint32_t code = domain_codes[j];
      codes[r] = code;
      valid[r] = (code == kNullCode) ? 0 : 1;
      if (coverage != nullptr) coverage[j] = 1;
    }
    return Status::OK();
  }

  for (size_t r = begin; r < end; ++r) {
    if (p == 0.0 || !rng.Bernoulli(p)) {
      // UINT32_MAX flags a row whose original value is outside the
      // domain (possible only with a caller-supplied domain); it
      // contributes no coverage.
      if (coverage != nullptr && original_indices[r] != UINT32_MAX) {
        coverage[original_indices[r]] = 1;
      }
      continue;
    }
    size_t j = static_cast<size_t>(rng.UniformInt(n));
    const Value& v = domain.value(j);
    if (v.is_null()) {
      switch (column->type()) {
        case ValueType::kInt64:
          (*column->mutable_ints())[r] = 0;
          break;
        case ValueType::kDouble:
          (*column->mutable_doubles())[r] = 0.0;
          break;
        default:
          return Status::Internal("unexpected column type");
      }
      valid[r] = 0;
    } else {
      if (v.type() != column->type()) {
        return Status::InvalidArgument(
            std::string("cannot set ") + ValueTypeToString(v.type()) +
            " value in " + ValueTypeToString(column->type()) + " column");
      }
      switch (column->type()) {
        case ValueType::kInt64:
          (*column->mutable_ints())[r] = v.AsInt64();
          break;
        case ValueType::kDouble:
          (*column->mutable_doubles())[r] = v.AsDouble();
          break;
        default:
          return Status::Internal("unexpected column type");
      }
      valid[r] = 1;
    }
    if (coverage != nullptr) coverage[j] = 1;
  }
  return Status::OK();
}

Result<TransitionProbabilities> ComputeTransitionProbabilities(double p,
                                                               double l,
                                                               double n) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1]");
  }
  if (!(n >= 1.0)) {
    return Status::InvalidArgument("N must be >= 1");
  }
  if (!(l >= 0.0 && l <= n)) {
    return Status::InvalidArgument("l must be in [0, N]");
  }
  TransitionProbabilities t;
  t.true_positive = (1.0 - p) + p * l / n;
  t.false_positive = p * l / n;
  t.true_negative = (1.0 - p) + p * (n - l) / n;
  t.false_negative = p * (n - l) / n;
  return t;
}

}  // namespace privateclean
