#include "privacy/randomized_response.h"

namespace privateclean {

Status ApplyRandomizedResponse(Column* column, const Domain& domain,
                               double p, Rng& rng) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  PCLEAN_ASSIGN_OR_RETURN(std::vector<uint32_t> domain_codes,
                          PrepareDomainCodes(column, domain));
  PCLEAN_RETURN_NOT_OK(ApplyRandomizedResponseShard(
      column, domain, p, rng, 0, column->size(), nullptr, nullptr,
      domain_codes.empty() ? nullptr : domain_codes.data()));
  column->RecomputeNullCount();
  return Status::OK();
}

Result<std::vector<uint32_t>> PrepareDomainCodes(Column* column,
                                                 const Domain& domain) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (column->type() != ValueType::kString) return std::vector<uint32_t>{};
  std::vector<uint32_t> codes(domain.size(), kNullCode);
  for (size_t j = 0; j < domain.size(); ++j) {
    const Value& v = domain.value(j);
    if (v.is_null()) continue;  // Stays kNullCode: the null member.
    if (v.type() != ValueType::kString) {
      return Status::InvalidArgument(
          std::string("cannot set ") + ValueTypeToString(v.type()) +
          " value in string column");
    }
    codes[j] = column->InternString(v.AsString());
  }
  return codes;
}

Status ApplyRandomizedResponseShard(Column* column, const Domain& domain,
                                    double p, Rng& rng, size_t begin,
                                    size_t end,
                                    const uint32_t* original_indices,
                                    uint8_t* coverage,
                                    const uint32_t* domain_codes) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        "randomization probability must be in [0, 1], got " +
        std::to_string(p));
  }
  // The paper's draw sequence: one Bernoulli per row, one uniform draw
  // only on replacement. The p == 0 short-circuit consumes no draws.
  return PerturbCodesShard(
      column, domain,
      [p](Rng& r, size_t n) -> size_t {
        if (p == 0.0 || !r.Bernoulli(p)) return kKeepRowDraw;
        return static_cast<size_t>(r.UniformInt(n));
      },
      rng, begin, end, original_indices, coverage, domain_codes);
}

Result<TransitionProbabilities> ComputeTransitionProbabilities(double p,
                                                               double l,
                                                               double n) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("p must be in [0, 1]");
  }
  if (!(n >= 1.0)) {
    return Status::InvalidArgument("N must be >= 1");
  }
  if (!(l >= 0.0 && l <= n)) {
    return Status::InvalidArgument("l must be in [0, N]");
  }
  TransitionProbabilities t;
  t.true_positive = (1.0 - p) + p * l / n;
  t.false_positive = p * l / n;
  t.true_negative = (1.0 - p) + p * (n - l) / n;
  t.false_negative = p * (n - l) / n;
  return t;
}

}  // namespace privateclean
