#ifndef PRIVATECLEAN_PRIVACY_TUNING_H_
#define PRIVATECLEAN_PRIVACY_TUNING_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "privacy/privacy_params.h"
#include "table/table.h"

namespace privateclean {

/// Analytic error bounds used for parameter tuning (paper §5.4–5.5).

/// Worst-case count-query error bound over all possible count queries,
/// in *selectivity units* (fraction of S), Eq. 4:
///   error < z_α · (1/(1−p)) · sqrt(1/(4S))
Result<double> CountErrorBound(double p, size_t dataset_size,
                               double confidence = 0.95);

/// Worst-case sum-query error bound, Eq. 6:
///   error <= z_α · (1/(1−p)) · sqrt(μ/S + 4(σ² + 2b²)/S)
/// where μ and σ² are the mean and variance of the (non-private) numeric
/// attribute.
Result<double> SumErrorBound(double p, double b, double mean,
                             double variance, size_t dataset_size,
                             double confidence = 0.95);

/// Output of the Appendix E tuning algorithm: a single randomization
/// probability for all discrete attributes and a Laplace scale per
/// numerical attribute (equalizing per-attribute ε).
struct TuningResult {
  double p = 0.0;
  std::unordered_map<std::string, double> numeric_b;
  /// The per-attribute ε implied by p, ε = ln(3/p − 2).
  double per_attribute_epsilon = 0.0;
};

/// Appendix E parameter-tuning algorithm. Given a desired maximum error
/// (in selectivity units, e.g. 0.05 = five points of selectivity) on any
/// count query with 1−α confidence:
///
///   1. p = 1 − z_α · sqrt(1 / (4·S·error²))   — inverted Eq. 4
///   2. every discrete attribute gets p
///   3. every numerical attribute j gets b_j = Δ_j / ln(3/p − 2)
///      so its ε matches the discrete attributes' ε
///
/// Errors with InvalidArgument if the target error is unattainable even
/// at p = 0 (no randomization), or so loose that p >= 1.
Result<TuningResult> TunePrivacyParameters(const Table& table,
                                           double max_count_error,
                                           double confidence = 0.95);

/// Converts a TuningResult into GrrParams ready for ApplyGrr.
GrrParams ToGrrParams(const TuningResult& tuning);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_TUNING_H_
