#include "privacy/accountant.h"

#include <limits>

#include "privacy/privacy_params.h"

namespace privateclean {

Result<PrivacyReport> AccountPrivacy(
    const PrivateRelationMetadata& metadata) {
  PrivacyReport report;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (const auto& [name, meta] : metadata.discrete) {
    double eps;
    if (meta.p <= 0.0) {
      eps = kInf;
      report.fully_private = false;
    } else {
      PCLEAN_ASSIGN_OR_RETURN(eps, EpsilonForRandomizedResponse(meta.p));
    }
    report.per_attribute_epsilon.emplace(name, eps);
  }
  for (const auto& [name, meta] : metadata.numeric) {
    double eps;
    if (meta.b <= 0.0) {
      // Zero noise: private only in the degenerate Δ == 0 case.
      eps = (meta.sensitivity == 0.0) ? 0.0 : kInf;
      if (eps == kInf) report.fully_private = false;
    } else {
      PCLEAN_ASSIGN_OR_RETURN(eps,
                              EpsilonForLaplace(meta.sensitivity, meta.b));
    }
    report.per_attribute_epsilon.emplace(name, eps);
  }

  report.total_epsilon = 0.0;
  for (const auto& [name, eps] : report.per_attribute_epsilon) {
    (void)name;
    report.total_epsilon += eps;
  }
  return report;
}

}  // namespace privateclean
