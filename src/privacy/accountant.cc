#include "privacy/accountant.h"

#include <cmath>
#include <limits>

#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"

namespace privateclean {

Result<PrivacyReport> AccountPrivacy(
    const PrivateRelationMetadata& metadata) {
  PrivacyReport report;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (const auto& [name, meta] : metadata.discrete) {
    // Legacy metadata with a parameter the GRR family itself rejects
    // (p < 0 is nonsensical, "never retained"): no privacy guarantee,
    // rather than an error — a report over damaged metadata should
    // still name the offending attribute.
    if (meta.mechanism == nullptr && meta.p < 0.0) {
      report.fully_private = false;
      report.per_attribute_epsilon.emplace(name, kInf);
      continue;
    }
    PCLEAN_ASSIGN_OR_RETURN(MechanismPtr mechanism, MechanismFor(meta));
    PCLEAN_ASSIGN_OR_RETURN(double eps,
                            mechanism->Epsilon(meta.domain.size()));
    if (std::isinf(eps)) report.fully_private = false;
    report.per_attribute_epsilon.emplace(name, eps);
  }
  for (const auto& [name, meta] : metadata.numeric) {
    double eps;
    if (meta.b <= 0.0) {
      // Zero noise: private only in the degenerate Δ == 0 case.
      eps = (meta.sensitivity == 0.0) ? 0.0 : kInf;
      if (eps == kInf) report.fully_private = false;
    } else {
      PCLEAN_ASSIGN_OR_RETURN(eps,
                              EpsilonForLaplace(meta.sensitivity, meta.b));
    }
    report.per_attribute_epsilon.emplace(name, eps);
  }

  report.total_epsilon = 0.0;
  for (const auto& [name, eps] : report.per_attribute_epsilon) {
    (void)name;
    report.total_epsilon += eps;
  }
  return report;
}

}  // namespace privateclean
