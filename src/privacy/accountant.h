#ifndef PRIVATECLEAN_PRIVACY_ACCOUNTANT_H_
#define PRIVATECLEAN_PRIVACY_ACCOUNTANT_H_

#include <map>
#include <string>

#include "common/result.h"
#include "privacy/grr.h"

namespace privateclean {

/// ε accounting for a privatized relation (paper Theorem 1):
/// the relation is ε-locally-differentially-private with
/// ε = Σ_i ε_{d_i} + Σ_j ε_{a_j}, where ε_{d_i} is the discrete
/// attribute's mechanism accounting (ln(3/p_i − 2) for the paper's GRR;
/// see privacy/mechanism.h for the other families) and ε_{a_j} = Δ_j /
/// b_j. Post-processing (cleaning) never increases ε.
struct PrivacyReport {
  /// Per-attribute ε, keyed by attribute name. +inf entries flag
  /// non-private attributes (p == 0 or b == 0).
  std::map<std::string, double> per_attribute_epsilon;
  /// Total ε by the composition theorem.
  double total_epsilon = 0.0;
  /// True iff every attribute has finite ε.
  bool fully_private = true;
};

/// Builds the ε report for the metadata produced by ApplyGrr.
Result<PrivacyReport> AccountPrivacy(const PrivateRelationMetadata& metadata);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_ACCOUNTANT_H_
