#ifndef PRIVATECLEAN_PRIVACY_MECHANISM_H_
#define PRIVATECLEAN_PRIVACY_MECHANISM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "privacy/randomized_response.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {

/// Identifies a randomization-mechanism family plus its family-level
/// parameters, as carried in GrrOptions and persisted in the release
/// MANIFEST (`mechanism: <name> [key=value ...]`). Per-attribute
/// parameters — the paper's replacement probability p, HLM's per-column
/// ε, sampling privacy's inner p0 — continue to live in
/// DiscreteAttributeMeta::p / the meta.csv `param` column.
///
/// Registered families:
///   "grr"      — the paper's generalized randomized response (§4.2.1):
///                keep with probability 1-p, redraw uniformly with
///                probability p. param = p. No family parameters.
///   "hlm"      — Holohan–Leith–Mason optimal generalized RR
///                (arXiv 1612.05568 / 1505.07254): for a target ε on an
///                N-value domain, the diagonal-constant matrix with
///                diagonal e^ε/(e^ε+N-1) maximizes utility among all
///                ε-LDP mechanisms. param = ε. No family parameters.
///   "sampling" — subsample-then-randomize sampling privacy
///                (arXiv 1708.01884): keep a row's value in play with
///                probability β and apply inner RR(p0) to it; replace it
///                with a uniform domain draw otherwise. param = p0;
///                family parameter "beta" ∈ (0, 1].
struct MechanismSpec {
  std::string name = "grr";
  /// Family-level parameters by name (e.g. {"beta", 0.5}). The map is
  /// ordered so the MANIFEST rendering is canonical.
  std::map<std::string, double> params;
};

/// The N x N confusion matrix of a registered mechanism. Every mechanism
/// here is *diagonal-constant*: a value maps to itself with one constant
/// probability and to each other domain value with another
/// (diagonal + (n-1) * off_diagonal == 1). The full matrix is therefore
/// two numbers; Row/Column materialize it for callers that want the
/// dense view (and for the general EpsilonFromConfusionMatrix path).
struct ConfusionMatrix {
  size_t n = 0;
  double diagonal = 0.0;
  double off_diagonal = 0.0;

  double At(size_t row, size_t col) const {
    return row == col ? diagonal : off_diagonal;
  }
  std::vector<double> Row(size_t row) const;
  std::vector<double> Column(size_t col) const;
  /// The dense n x n matrix, row-major.
  std::vector<std::vector<double>> Dense() const;
};

/// One discrete-attribute randomization mechanism instance, bound to its
/// per-attribute parameter. Immutable and thread-safe: instances are
/// shared across query threads via shared_ptr<const Mechanism>.
///
/// The estimator math (core/estimators.cc, core/conjunctive.cc, both
/// provenance passes) depends on the mechanism only through
/// Transitions(), and privacy accounting only through Epsilon() — this
/// interface is the entire mechanism/estimator contract.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Registry name ("grr", "hlm", "sampling").
  virtual const char* name() const = 0;

  /// The per-attribute parameter exactly as persisted in meta.csv's
  /// `param` column (grr: p, hlm: ε, sampling: inner p0).
  virtual double param() const = 0;

  /// The family spec this instance was built from (MANIFEST identity).
  virtual MechanismSpec Spec() const = 0;

  /// Realized probability that a row's value is replaced by a fresh
  /// uniform draw over an n-value domain. Every diagonal-constant
  /// mechanism is equivalent to uniform replacement with some effective
  /// probability p_eff; this is the single number the closed-form
  /// estimators need. For "grr" it is the stored p itself, independent
  /// of n, so the legacy estimator inputs are reproduced bit-exactly.
  virtual Result<double> ReplacementProbability(size_t n) const = 0;

  /// The confusion matrix over an n-value domain:
  /// diagonal = (1 - p_eff) + p_eff/n, off-diagonal = p_eff/n.
  Result<ConfusionMatrix> Confusion(size_t n) const;

  /// Transition probabilities for a predicate selecting l of the n dirty
  /// values (paper §5.3), derived from the realized replacement
  /// probability: τ_p = (1-p_eff) + p_eff·l/n, τ_n = p_eff·l/n. `l` may
  /// be fractional (weighted provenance cut, §7.2).
  Result<TransitionProbabilities> Transitions(double l, double n) const;

  /// The ε this mechanism spends on an n-value domain. +infinity flags a
  /// non-private configuration (e.g. grr with p == 0); infeasible
  /// (parameter, domain-size) combinations are typed InvalidArgument.
  ///
  /// Accounting is per-family: "grr" reports the paper's Lemma 1 formula
  /// ln(3/p - 2) for fidelity with the source paper; "hlm" reports its
  /// exact target ε (the matrix attains ln(diag/off) == ε by
  /// construction); "sampling" reports the exact ln(diag/off) of the
  /// combined matrix, which the subsampling amplification bound
  /// ln(1 + β(e^{ε0} - 1)) provably dominates.
  virtual Result<double> Epsilon(size_t n) const = 0;

  /// Row-range perturbation kernel, contract identical to
  /// ApplyRandomizedResponseShard (privacy/randomized_response.h): the
  /// caller pre-interns domain codes, forks one RNG stream per shard in
  /// shard order, and recomputes the null count after all shards finish.
  virtual Status PerturbShard(Column* column, const Domain& domain, Rng& rng,
                              size_t begin, size_t end,
                              const uint32_t* original_indices,
                              uint8_t* coverage,
                              const uint32_t* domain_codes) const = 0;

  /// Numeric-attribute kernel. Every registered family noises numeric
  /// columns with the paper's Laplace mechanism (scale b); the default
  /// delegates to ApplyLaplaceMechanismShard. Kept on the interface so
  /// the GRR + Laplace pair is ported onto it as a unit and a future
  /// family can substitute e.g. a subsampled or staircase mechanism.
  virtual Status NoiseNumericShard(Column* column, double b, Rng& rng,
                                   size_t begin, size_t end) const;
};

using MechanismPtr = std::shared_ptr<const Mechanism>;

/// True when `name` is a registered mechanism family.
bool IsKnownMechanism(const std::string& name);

/// Registered family names, in registry order.
const std::vector<std::string>& KnownMechanisms();

/// Validates the family-level spec: known name, no unknown parameter
/// keys, required parameters present and in range (e.g. sampling's
/// β ∈ (0, 1]). Unknown names are FailedPrecondition (the reader-side
/// contract for releases written by a newer build); bad parameters are
/// InvalidArgument.
Status ValidateMechanismSpec(const MechanismSpec& spec);

/// Builds a mechanism instance from its family spec and per-attribute
/// parameter. Errors are typed: FailedPrecondition for unknown names,
/// InvalidArgument for infeasible parameters (grr p outside [0, 1],
/// hlm ε negative or non-finite, sampling p0 outside [0, 1] or β
/// outside (0, 1]).
Result<MechanismPtr> MakeMechanism(const MechanismSpec& spec, double param);

/// Canonical one-line rendering for the MANIFEST: the family name
/// followed by space-separated key=value parameters in key order, e.g.
/// "sampling beta=0.5". Inverse of ParseMechanismSpec.
std::string RenderMechanismSpec(const MechanismSpec& spec);

/// Parses the MANIFEST rendering. Purely syntactic (name token plus
/// key=value pairs); semantic validation is ValidateMechanismSpec.
Result<MechanismSpec> ParseMechanismSpec(const std::string& text);

/// ε of an arbitrary (not necessarily symmetric or diagonal-constant)
/// row-stochastic confusion matrix M, where M[i][j] = P(output j | true
/// value i): the worst-case log-likelihood ratio
/// max_j max_{i,i'} ln(M[i][j] / M[i'][j]).
///
/// Typed errors: InvalidArgument for a non-square/empty matrix, negative
/// entries, or a row not summing to 1; FailedPrecondition when some
/// output column mixes zero and non-zero entries (an unbounded
/// likelihood ratio — observing that output identifies the input, so no
/// finite ε exists). An all-zero column is skipped: the output never
/// occurs, so it constrains nothing.
Result<double> EpsilonFromConfusionMatrix(
    const std::vector<std::vector<double>>& matrix);

/// The subsampling amplification bound (arXiv 1708.01884): running an
/// ε0-LDP mechanism on a β-subsample is ln(1 + β(e^{ε0} - 1))-LDP.
/// Requires ε0 >= 0 and β ∈ (0, 1]; typed InvalidArgument otherwise.
Result<double> SamplingAmplifiedEpsilon(double inner_epsilon, double beta);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_MECHANISM_H_
