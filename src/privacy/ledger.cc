#include "privacy/ledger.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/io_util.h"

namespace privateclean {

namespace {

constexpr char kWalName[] = "ledger.wal";
constexpr char kCkptName[] = "ledger.ckpt";
constexpr char kCkptMagic[] = "%PCLEAN-LEDGER";

/// Concurrent charges tolerate this much float drift before a budget
/// counts as overdrawn; dyadic ε values (the common case) never need it.
constexpr double kBudgetSlack = 1e-9;

enum class Op { kGrant, kRelax, kCharge };

const char* OpName(Op op) {
  switch (op) {
    case Op::kGrant:
      return "grant";
    case Op::kRelax:
      return "relax";
    case Op::kCharge:
      return "charge";
  }
  return "?";
}

bool OpFromName(std::string_view name, Op* op) {
  if (name == "grant") {
    *op = Op::kGrant;
  } else if (name == "relax") {
    *op = Op::kRelax;
  } else if (name == "charge") {
    *op = Op::kCharge;
  } else {
    return false;
  }
  return true;
}

std::string FormatEps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// ε values travel through the WAL as the hex of their IEEE-754 bit
/// pattern, so replayed state is bit-identical to the acknowledged one.
std::string DoubleBitsHex(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = "0123456789abcdef"[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

bool DoubleFromBitsHex(std::string_view hex, double* v) {
  if (hex.size() != 16) return false;
  uint64_t bits = 0;
  for (char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool IsHexDigit(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f');
}

bool ParseU64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (!IsDigit(c)) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

struct WalRecord {
  uint64_t seq = 0;
  Op op = Op::kGrant;
  double epsilon = 0.0;
  std::string tenant;
};

/// One WAL frame: `<crc32c-hex8> <payload-len> <payload>\n`.
std::string EncodeFrame(uint64_t seq, Op op, double epsilon,
                        const std::string& tenant) {
  std::string payload = std::to_string(seq);
  payload += ' ';
  payload += OpName(op);
  payload += ' ';
  payload += DoubleBitsHex(epsilon);
  payload += ' ';
  payload += tenant;
  std::string frame = io::Crc32cToHex(io::Crc32c(payload));
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += payload;
  frame += '\n';
  return frame;
}

bool ParsePayload(std::string_view payload, WalRecord* rec) {
  size_t sp1 = payload.find(' ');
  if (sp1 == std::string_view::npos) return false;
  size_t sp2 = payload.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  size_t sp3 = payload.find(' ', sp2 + 1);
  if (sp3 == std::string_view::npos) return false;
  if (!ParseU64(payload.substr(0, sp1), &rec->seq)) return false;
  if (!OpFromName(payload.substr(sp1 + 1, sp2 - sp1 - 1), &rec->op)) {
    return false;
  }
  if (!DoubleFromBitsHex(payload.substr(sp2 + 1, sp3 - sp2 - 1),
                         &rec->epsilon)) {
    return false;
  }
  rec->tenant = std::string(payload.substr(sp3 + 1));
  return !rec->tenant.empty();
}

/// Walks the WAL image frame by frame. A frame the image ends inside is
/// a torn tail: `*valid_prefix` is set to its start and parsing stops
/// cleanly (the caller truncates the file there). A frame that is fully
/// present but damaged cannot be the work of a crash — an append-only
/// file tears only by losing its tail, never by changing bytes — so it
/// is DataLoss naming the file and byte offset.
Status ParseWalFrames(const std::string& path, const std::string& bytes,
                      std::vector<WalRecord>* records,
                      size_t* valid_prefix) {
  *valid_prefix = bytes.size();
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t start = off;
    auto corrupt = [&](const std::string& what) {
      return Status::DataLoss(
          "'" + path + "': " + what + " at byte " + std::to_string(start) +
          " — mid-log corruption, not a torn tail; refusing to drop "
          "acknowledged records");
    };
    const size_t remaining = bytes.size() - start;
    // Header: 8 CRC hex digits, space, decimal payload length, space.
    if (remaining < 9) {
      *valid_prefix = start;
      break;
    }
    for (size_t i = 0; i < 8; ++i) {
      if (!IsHexDigit(bytes[start + i])) return corrupt("bad frame CRC field");
    }
    if (bytes[start + 8] != ' ') return corrupt("bad frame header");
    size_t j = start + 9;
    while (j < bytes.size() && IsDigit(bytes[j]) && j - start < 29) ++j;
    if (j == bytes.size()) {
      *valid_prefix = start;  // header cut mid-length: torn
      break;
    }
    if (j == start + 9 || bytes[j] != ' ') {
      return corrupt("bad frame length field");
    }
    uint64_t payload_len = 0;
    if (!ParseU64(std::string_view(bytes).substr(start + 9, j - start - 9),
                  &payload_len)) {
      return corrupt("bad frame length field");
    }
    const size_t payload_start = j + 1;
    if (bytes.size() - payload_start < payload_len + 1) {
      *valid_prefix = start;  // frame runs past EOF: torn
      break;
    }
    std::string_view payload =
        std::string_view(bytes).substr(payload_start, payload_len);
    if (bytes[payload_start + payload_len] != '\n') {
      return corrupt("missing frame terminator");
    }
    auto crc = io::Crc32cFromHex(
        std::string_view(bytes).substr(start, 8));
    if (!crc.ok() || *crc != io::Crc32c(payload)) {
      return corrupt("frame checksum mismatch");
    }
    WalRecord rec;
    if (!ParsePayload(payload, &rec)) return corrupt("bad frame payload");
    records->push_back(std::move(rec));
    off = payload_start + payload_len + 1;
  }
  return Status::OK();
}

std::string RenderCheckpoint(
    uint64_t last_seq, const std::map<std::string, TenantBudget>& tenants) {
  std::string text = kCkptMagic;
  text += "\nversion: 1\nlast_seq: ";
  text += std::to_string(last_seq);
  text += '\n';
  for (const auto& [name, budget] : tenants) {
    text += "tenant: ";
    text += DoubleBitsHex(budget.granted);
    text += ' ';
    text += DoubleBitsHex(budget.spent);
    text += ' ';
    text += name;
    text += '\n';
  }
  text += "ckpt_crc: " + io::Crc32cToHex(io::Crc32c(text)) + "\n";
  return text;
}

Status ParseCheckpoint(const std::string& path, const std::string& text,
                       std::map<std::string, TenantBudget>* tenants,
                       uint64_t* last_seq) {
  auto bad = [&](const std::string& what) {
    return Status::DataLoss("'" + path + "': " + what);
  };
  size_t crc_pos = text.rfind("ckpt_crc: ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return bad("checkpoint missing its ckpt_crc trailer");
  }
  std::string_view trailer = std::string_view(text).substr(crc_pos + 10);
  if (trailer.size() < 9 || trailer[8] != '\n') {
    return bad("malformed ckpt_crc trailer");
  }
  auto want = io::Crc32cFromHex(trailer.substr(0, 8));
  if (!want.ok()) return bad("malformed ckpt_crc trailer");
  if (*want != io::Crc32c(std::string_view(text).substr(0, crc_pos))) {
    return bad("checkpoint checksum mismatch");
  }

  std::string_view body = std::string_view(text).substr(0, crc_pos);
  bool saw_magic = false, saw_version = false, saw_seq = false;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) return bad("unterminated line");
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_magic) {
      if (line != kCkptMagic) return bad("missing checkpoint magic");
      saw_magic = true;
    } else if (line.rfind("version: ", 0) == 0) {
      if (line.substr(9) != "1") {
        return bad("unsupported checkpoint version '" +
                   std::string(line.substr(9)) + "'");
      }
      saw_version = true;
    } else if (line.rfind("last_seq: ", 0) == 0) {
      if (!ParseU64(line.substr(10), last_seq)) {
        return bad("bad last_seq line");
      }
      saw_seq = true;
    } else if (line.rfind("tenant: ", 0) == 0) {
      std::string_view rest = line.substr(8);
      if (rest.size() < 16 + 1 + 16 + 1 + 1 || rest[16] != ' ' ||
          rest[33] != ' ') {
        return bad("bad tenant line");
      }
      TenantBudget budget;
      if (!DoubleFromBitsHex(rest.substr(0, 16), &budget.granted) ||
          !DoubleFromBitsHex(rest.substr(17, 16), &budget.spent)) {
        return bad("bad tenant line");
      }
      std::string name(rest.substr(34));
      if (name.empty() || tenants->count(name) != 0) {
        return bad("bad tenant line");
      }
      (*tenants)[name] = budget;
    } else {
      return bad("unrecognized checkpoint line '" + std::string(line) + "'");
    }
  }
  if (!saw_magic || !saw_version || !saw_seq) {
    return bad("incomplete checkpoint header");
  }
  return Status::OK();
}

std::string ErrnoMessage() { return std::strerror(errno); }

}  // namespace

struct BudgetLedger::Rep {
  std::string dir;
  std::string wal_path;
  std::string ckpt_path;
  Options options;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, TenantBudget> tenants;
  /// Sequence the next record will take (records 1..next_seq-1 exist).
  uint64_t next_seq = 1;
  /// Highest sequence known durable on disk.
  uint64_t durable_seq = 0;
  /// Sequence covered by ledger.ckpt (replay skips frames at or below).
  uint64_t ckpt_last_seq = 0;
  /// Frames in the WAL past the checkpoint (drives auto-compaction).
  uint64_t wal_records = 0;
  /// Expected byte length of ledger.wal — cross-checked after every
  /// commit so a silently short append wounds instead of acknowledging.
  uint64_t wal_size = 0;
  /// Exclusive-IO token shared by commits and checkpointing.
  bool commit_in_progress = false;
  bool wounded = false;
  Status wound_status;
  /// Pending frames in sequence order, drained by the commit leader.
  std::vector<std::pair<uint64_t, std::string>> queue;
};

namespace {

Status WoundedError(const BudgetLedger::Rep& r) {
  return Status::FailedPrecondition(
      "ledger '" + r.dir +
      "' needs recovery after a failed commit (reopen it): " +
      r.wound_status.message());
}

/// The leader's IO: append the batch, fsync the barrier, cross-check the
/// on-disk length. Runs without the lock held.
Status AppendBatchToWal(BudgetLedger::Rep& r, std::string batch,
                        uint64_t expected_size) {
  PCLEAN_FAILPOINT("ledger.wal.append", r.wal_path);
  PCLEAN_FAILPOINT_DATA("ledger.wal.short", &batch);
  PCLEAN_RETURN_NOT_OK(io::AppendFile(r.wal_path, batch));
  PCLEAN_FAILPOINT("ledger.wal.fsync", r.wal_path);
  PCLEAN_RETURN_NOT_OK(io::FsyncFile(r.wal_path));
  struct stat sb;
  if (::stat(r.wal_path.c_str(), &sb) != 0) {
    return Status::IOError("cannot stat WAL '" + r.wal_path +
                           "': " + ErrnoMessage());
  }
  if (static_cast<uint64_t>(sb.st_size) != expected_size) {
    return Status::IOError(
        "short append to '" + r.wal_path + "': expected " +
        std::to_string(expected_size) + " bytes, found " +
        std::to_string(sb.st_size));
  }
  return Status::OK();
}

/// Blocks until record `my_seq` is durable. Whichever caller finds no
/// commit in flight leads: it drains the queue (or just its head when
/// group commit is off), appends + fsyncs once, and wakes the rest. A
/// failed commit wounds the ledger for everyone.
Status CommitLocked(BudgetLedger::Rep& r, std::unique_lock<std::mutex>& lk,
                    uint64_t my_seq) {
  for (;;) {
    // The caller's record is already in the pipeline, so a wound here
    // means ITS durability is indeterminate: surface the underlying
    // commit error, not the FailedPrecondition that entry checks use
    // for operations rejected before anything was enqueued.
    if (r.wounded) return r.wound_status;
    if (r.durable_seq >= my_seq) return Status::OK();
    if (r.commit_in_progress || r.queue.empty()) {
      r.cv.wait(lk);
      continue;
    }
    r.commit_in_progress = true;
    const size_t take = r.options.group_commit ? r.queue.size() : 1;
    std::string batch;
    uint64_t batch_last = 0;
    for (size_t i = 0; i < take; ++i) {
      batch += r.queue[i].second;
      batch_last = r.queue[i].first;
    }
    r.queue.erase(r.queue.begin(),
                  r.queue.begin() + static_cast<ptrdiff_t>(take));
    const uint64_t expected_size = r.wal_size + batch.size();
    lk.unlock();
    Status st = AppendBatchToWal(r, std::move(batch), expected_size);
    lk.lock();
    r.commit_in_progress = false;
    if (st.ok()) {
      r.wal_size = expected_size;
      r.wal_records += take;
      if (batch_last > r.durable_seq) r.durable_seq = batch_last;
    } else {
      r.wounded = true;
      r.wound_status = st;
    }
    r.cv.notify_all();
  }
}

/// Checkpoint IO: temp sibling, durable write, atomic rename, directory
/// fsync, then WAL retirement. Runs without the lock held. Any failure
/// leaves the previous checkpoint + WAL pair fully intact.
Status WriteCheckpointFiles(BudgetLedger::Rep& r, const std::string& text) {
  const std::string tmp = r.ckpt_path + ".tmp";
  auto discard_tmp = [&] { std::remove(tmp.c_str()); };
  Status st = failpoint::Hit("ledger.ckpt.write", tmp);
  if (st.ok()) st = io::WriteFileDurable(tmp, text);
  if (!st.ok()) {
    discard_tmp();
    return st;
  }
  st = failpoint::Hit("ledger.ckpt.rename", r.ckpt_path);
  if (st.ok() && std::rename(tmp.c_str(), r.ckpt_path.c_str()) != 0) {
    st = Status::IOError("cannot publish checkpoint '" + r.ckpt_path +
                         "': " + ErrnoMessage());
  }
  if (!st.ok()) {
    discard_tmp();
    return st;
  }
  PCLEAN_RETURN_NOT_OK(io::FsyncDir(r.dir));
  // Retire the compacted frames. A crash between the rename above and
  // this truncate is benign: replay skips frames the checkpoint covers.
  if (::truncate(r.wal_path.c_str(), 0) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("cannot truncate WAL '" + r.wal_path +
                           "': " + ErrnoMessage());
  }
  return io::FsyncFile(r.wal_path);
}

Status CheckpointLocked(BudgetLedger::Rep& r,
                        std::unique_lock<std::mutex>& lk) {
  // Flush pending commits first, so the snapshot covers exactly the
  // durable prefix and nothing tentative.
  for (;;) {
    if (r.wounded) return WoundedError(r);
    if (!r.commit_in_progress && r.queue.empty()) break;
    if (r.commit_in_progress) {
      r.cv.wait(lk);
    } else {
      PCLEAN_RETURN_NOT_OK(CommitLocked(r, lk, r.queue.back().first));
    }
  }
  r.commit_in_progress = true;  // blocks commits while we compact
  const uint64_t snap_seq = r.next_seq - 1;
  std::string text = RenderCheckpoint(snap_seq, r.tenants);
  lk.unlock();
  Status st = WriteCheckpointFiles(r, text);
  lk.lock();
  r.commit_in_progress = false;
  if (st.ok()) {
    r.ckpt_last_seq = snap_seq;
    r.wal_records = 0;
    r.wal_size = 0;
  }
  r.cv.notify_all();
  return st;
}

}  // namespace

BudgetLedger::BudgetLedger(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
BudgetLedger::BudgetLedger(BudgetLedger&&) noexcept = default;
BudgetLedger& BudgetLedger::operator=(BudgetLedger&&) noexcept = default;
BudgetLedger::~BudgetLedger() = default;

Result<BudgetLedger> BudgetLedger::Open(const std::string& dir) {
  return Open(dir, Options());
}

Result<BudgetLedger> BudgetLedger::Open(const std::string& dir,
                                        const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create ledger directory '" + dir +
                           "': " + ec.message());
  }
  auto rep = std::make_unique<Rep>();
  rep->dir = dir;
  rep->wal_path = dir + "/" + kWalName;
  rep->ckpt_path = dir + "/" + kCkptName;
  rep->options = options;

  PCLEAN_FAILPOINT("ledger.recover.open", dir);

  auto ckpt = io::ReadFileWithRetry(rep->ckpt_path);
  if (ckpt.ok()) {
    PCLEAN_RETURN_NOT_OK(ParseCheckpoint(rep->ckpt_path, *ckpt,
                                         &rep->tenants,
                                         &rep->ckpt_last_seq));
  } else if (!ckpt.status().IsNotFound()) {
    return ckpt.status();
  }
  rep->next_seq = rep->ckpt_last_seq + 1;

  auto wal = io::ReadFileWithRetry(rep->wal_path);
  if (wal.ok()) {
    std::string bytes = std::move(*wal);
    // The recovery data faults damage the recovered image exactly as a
    // torn or bit-rotted disk would, before any frame is parsed.
    PCLEAN_FAILPOINT_DATA("ledger.recover.torn", &bytes);
    PCLEAN_FAILPOINT_DATA("ledger.recover.bitflip", &bytes);
    std::vector<WalRecord> records;
    size_t valid_prefix = bytes.size();
    PCLEAN_RETURN_NOT_OK(
        ParseWalFrames(rep->wal_path, bytes, &records, &valid_prefix));
    uint64_t prev_seq = 0;
    for (const WalRecord& rec : records) {
      if (rec.seq <= prev_seq) {
        return Status::DataLoss("'" + rep->wal_path +
                                "': non-monotonic record sequence " +
                                std::to_string(rec.seq) + " after " +
                                std::to_string(prev_seq));
      }
      prev_seq = rec.seq;
      if (rec.seq <= rep->ckpt_last_seq) continue;
      TenantBudget& budget = rep->tenants[rec.tenant];
      if (rec.op == Op::kCharge) {
        budget.spent += rec.epsilon;
      } else {
        budget.granted += rec.epsilon;
      }
      ++rep->wal_records;
    }
    if (prev_seq >= rep->next_seq) rep->next_seq = prev_seq + 1;
    // Torn-tail repair happens on disk, not just in memory: truncating
    // back to the last whole frame is what makes a re-crash during
    // recovery converge — the second recovery sees the same prefix.
    struct stat sb;
    if (::stat(rep->wal_path.c_str(), &sb) != 0) {
      return Status::IOError("cannot stat WAL '" + rep->wal_path +
                             "': " + ErrnoMessage());
    }
    if (static_cast<uint64_t>(sb.st_size) != valid_prefix) {
      if (::truncate(rep->wal_path.c_str(),
                     static_cast<off_t>(valid_prefix)) != 0) {
        return Status::IOError("cannot repair torn WAL '" + rep->wal_path +
                               "': " + ErrnoMessage());
      }
      PCLEAN_RETURN_NOT_OK(io::FsyncFile(rep->wal_path));
    }
    rep->wal_size = valid_prefix;
  } else if (!wal.status().IsNotFound()) {
    return wal.status();
  }
  rep->durable_seq = rep->next_seq - 1;
  return BudgetLedger(std::move(rep));
}

namespace {

Status ValidateMutation(const std::string& tenant, double epsilon) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (tenant.find('\n') != std::string::npos) {
    return Status::InvalidArgument("tenant name must not contain newlines");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("ε must be finite and positive, got " +
                                   FormatEps(epsilon));
  }
  return Status::OK();
}

}  // namespace

Status BudgetLedger::Grant(const std::string& tenant, double epsilon) {
  PCLEAN_RETURN_NOT_OK(ValidateMutation(tenant, epsilon));
  std::unique_lock<std::mutex> lk(rep_->mu);
  Rep& r = *rep_;
  if (r.wounded) return WoundedError(r);
  const uint64_t seq = r.next_seq++;
  r.tenants[tenant].granted += epsilon;
  r.queue.emplace_back(seq, EncodeFrame(seq, Op::kGrant, epsilon, tenant));
  PCLEAN_RETURN_NOT_OK(CommitLocked(r, lk, seq));
  if (r.options.checkpoint_every > 0 &&
      r.wal_records >= r.options.checkpoint_every) {
    // The record is durable either way; a compaction failure only means
    // the WAL stays longer than we'd like.
    (void)CheckpointLocked(r, lk);
  }
  return Status::OK();
}

Status BudgetLedger::Relax(const std::string& tenant, double epsilon) {
  PCLEAN_RETURN_NOT_OK(ValidateMutation(tenant, epsilon));
  std::unique_lock<std::mutex> lk(rep_->mu);
  Rep& r = *rep_;
  if (r.wounded) return WoundedError(r);
  const uint64_t seq = r.next_seq++;
  r.tenants[tenant].granted += epsilon;
  r.queue.emplace_back(seq, EncodeFrame(seq, Op::kRelax, epsilon, tenant));
  PCLEAN_RETURN_NOT_OK(CommitLocked(r, lk, seq));
  if (r.options.checkpoint_every > 0 &&
      r.wal_records >= r.options.checkpoint_every) {
    (void)CheckpointLocked(r, lk);
  }
  return Status::OK();
}

Status BudgetLedger::Charge(const std::string& tenant, double epsilon) {
  PCLEAN_RETURN_NOT_OK(ValidateMutation(tenant, epsilon));
  std::unique_lock<std::mutex> lk(rep_->mu);
  Rep& r = *rep_;
  if (r.wounded) return WoundedError(r);
  // Check-and-spend is atomic under the lock: the tentative spend below
  // is visible to concurrent charges, so two of them cannot jointly
  // overdraft while the leader is off fsyncing.
  TenantBudget current;  // zero allowance for a tenant never granted
  if (auto it = r.tenants.find(tenant); it != r.tenants.end()) {
    current = it->second;
  }
  if (current.spent + epsilon > current.granted + kBudgetSlack) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "': charge of ε=" + FormatEps(epsilon) +
        " exceeds remaining budget (granted ε=" +
        FormatEps(current.granted) + ", spent ε=" +
        FormatEps(current.spent) + ", remaining ε=" +
        FormatEps(current.remaining()) + ")");
  }
  const uint64_t seq = r.next_seq++;
  r.tenants[tenant].spent += epsilon;
  r.queue.emplace_back(seq, EncodeFrame(seq, Op::kCharge, epsilon, tenant));
  PCLEAN_RETURN_NOT_OK(CommitLocked(r, lk, seq));
  if (r.options.checkpoint_every > 0 &&
      r.wal_records >= r.options.checkpoint_every) {
    (void)CheckpointLocked(r, lk);
  }
  return Status::OK();
}

Result<TenantBudget> BudgetLedger::Budget(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  const Rep& r = *rep_;
  if (r.wounded) return WoundedError(r);
  auto it = r.tenants.find(tenant);
  if (it == r.tenants.end()) {
    return Status::NotFound("tenant '" + tenant +
                            "' has no budget in ledger '" + r.dir + "'");
  }
  return it->second;
}

TenantBudget BudgetLedger::BudgetOrZero(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  auto it = rep_->tenants.find(tenant);
  if (it == rep_->tenants.end()) return TenantBudget{};
  return it->second;
}

Result<std::map<std::string, TenantBudget>> BudgetLedger::Snapshot() const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  const Rep& r = *rep_;
  if (r.wounded) return WoundedError(r);
  return r.tenants;
}

Status BudgetLedger::Checkpoint() {
  std::unique_lock<std::mutex> lk(rep_->mu);
  return CheckpointLocked(*rep_, lk);
}

uint64_t BudgetLedger::last_seq() const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  return rep_->next_seq - 1;
}

uint64_t BudgetLedger::records_since_checkpoint() const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  return rep_->wal_records;
}

bool BudgetLedger::wounded() const {
  std::lock_guard<std::mutex> lk(rep_->mu);
  return rep_->wounded;
}

const std::string& BudgetLedger::dir() const { return rep_->dir; }

}  // namespace privateclean
