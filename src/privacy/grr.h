#ifndef PRIVATECLEAN_PRIVACY_GRR_H_
#define PRIVATECLEAN_PRIVACY_GRR_H_

#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "privacy/privacy_params.h"
#include "table/domain.h"
#include "table/table.h"

namespace privateclean {

/// Metadata retained for one randomized discrete attribute: the
/// randomization probability and the snapshot of the *dirty* domain at
/// randomization time. The snapshot is what query processing needs — it
/// fixes N (the number of distinct dirty values) and anchors the
/// provenance graph's left-hand side (paper §6.2).
struct DiscreteAttributeMeta {
  double p = 0.0;
  Domain domain;
};

/// Metadata for one noised numerical attribute.
struct NumericAttributeMeta {
  double b = 0.0;
  double sensitivity = 0.0;  ///< Δ at randomization time (max − min).
};

/// Everything the provider hands the analyst alongside the private
/// relation V. These are public parameters of the mechanism — revealing
/// them does not weaken ε-local differential privacy.
struct PrivateRelationMetadata {
  size_t dataset_size = 0;  ///< S
  std::unordered_map<std::string, DiscreteAttributeMeta> discrete;
  std::unordered_map<std::string, NumericAttributeMeta> numeric;
};

/// Options for private-relation generation.
struct GrrOptions {
  /// Regenerate a discrete column's randomization until every dirty
  /// domain value is still visible (paper §4.3: "the database can
  /// regenerate the private views until this is true").
  bool ensure_domain_preserved = true;
  /// Abort with FailedPrecondition after this many attempts per column —
  /// a symptom that the dataset violates the Theorem 2 size bound badly.
  size_t max_regenerations = 1000;
  /// Threading for the per-row randomization loops. Rows are sharded by
  /// size alone and each shard forks its own RNG stream by shard index,
  /// so for a fixed seed the private relation is bit-identical at any
  /// thread count (see common/thread_pool.h).
  ExecutionOptions exec;
};

/// The result of Generalized Randomized Response.
struct GrrOutput {
  Table table;  ///< The ε-locally-differentially-private relation V.
  PrivateRelationMetadata metadata;
  size_t total_regenerations = 0;  ///< Extra draws due to masked values.
};

/// Applies Generalized Randomized Response (paper §4.2) to `input`:
/// randomized response with p_i on each discrete attribute, Laplace noise
/// with scale b_i on each numerical attribute.
///
/// Parameters are taken from `params.discrete_p` / `params.numeric_b`,
/// falling back to `params.default_p` / `params.default_b`. Every
/// attribute must be covered: GRR refuses to leave a column non-private,
/// because a single non-randomized column can de-randomize the others
/// (Theorem 1 interpretation).
Result<GrrOutput> ApplyGrr(const Table& input, const GrrParams& params,
                           const GrrOptions& options, Rng& rng);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_GRR_H_
