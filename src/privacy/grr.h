#ifndef PRIVATECLEAN_PRIVACY_GRR_H_
#define PRIVATECLEAN_PRIVACY_GRR_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "table/domain.h"
#include "table/table.h"

namespace privateclean {

/// Metadata retained for one randomized discrete attribute: the
/// per-attribute mechanism parameter, the snapshot of the *dirty* domain
/// at randomization time, and the mechanism instance itself. The domain
/// snapshot is what query processing needs — it fixes N (the number of
/// distinct dirty values) and anchors the provenance graph's left-hand
/// side (paper §6.2).
struct DiscreteAttributeMeta {
  /// The mechanism's stored per-attribute parameter (meta.csv `param`):
  /// the replacement probability for "grr", the target ε for "hlm", the
  /// inner randomization probability p0 for "sampling". Named `p` for
  /// continuity with the paper and the pre-mechanism-zoo layout.
  double p = 0.0;
  Domain domain;
  /// Null means legacy GRR with parameter `p` (pre-mechanism-zoo
  /// metadata, including every hand-built test fixture); resolve
  /// through MechanismFor() rather than dereferencing directly.
  std::shared_ptr<const Mechanism> mechanism;
};

/// The mechanism behind a metadata entry, with null defaulting to the
/// paper's GRR at parameter `meta.p` — the explicit legacy fallback for
/// metadata built before the mechanism zoo (or by hand in tests).
Result<MechanismPtr> MechanismFor(const DiscreteAttributeMeta& meta);

/// Metadata for one noised numerical attribute.
struct NumericAttributeMeta {
  double b = 0.0;
  double sensitivity = 0.0;  ///< Δ at randomization time (max − min).
};

/// Everything the provider hands the analyst alongside the private
/// relation V. These are public parameters of the mechanism — revealing
/// them does not weaken ε-local differential privacy.
struct PrivateRelationMetadata {
  size_t dataset_size = 0;  ///< S
  std::unordered_map<std::string, DiscreteAttributeMeta> discrete;
  std::unordered_map<std::string, NumericAttributeMeta> numeric;
  /// The mechanism family the relation was randomized under, persisted
  /// in the release MANIFEST so a release is never decoded with the
  /// wrong estimator. Defaults to the paper's GRR.
  MechanismSpec mechanism_spec;
  /// The SQL relation name this table answers to in FROM clauses. Empty
  /// means unnamed: in-process tables accept any FROM spelling. Releases
  /// persist the name in the MANIFEST (`relation:` line) and default to
  /// "r", the paper's private view R.
  std::string relation_name;
};

/// Options for private-relation generation.
struct GrrOptions {
  /// Regenerate a discrete column's randomization until every dirty
  /// domain value is still visible (paper §4.3: "the database can
  /// regenerate the private views until this is true").
  bool ensure_domain_preserved = true;
  /// Abort with FailedPrecondition after this many attempts per column —
  /// a symptom that the dataset violates the Theorem 2 size bound badly.
  size_t max_regenerations = 1000;
  /// The randomization-mechanism family for discrete attributes (see
  /// privacy/mechanism.h). The per-attribute parameter still comes from
  /// GrrParams (`discrete_p` / `default_p`): p for "grr", target ε for
  /// "hlm", inner p0 for "sampling". Numeric attributes use the Laplace
  /// mechanism under every family.
  MechanismSpec mechanism;
  /// Threading for the per-row randomization loops. Rows are sharded by
  /// size alone and each shard forks its own RNG stream by shard index,
  /// so for a fixed seed the private relation is bit-identical at any
  /// thread count (see common/thread_pool.h).
  ExecutionOptions exec;
};

/// The result of Generalized Randomized Response.
struct GrrOutput {
  Table table;  ///< The ε-locally-differentially-private relation V.
  PrivateRelationMetadata metadata;
  size_t total_regenerations = 0;  ///< Extra draws due to masked values.
};

/// Applies Generalized Randomized Response (paper §4.2) to `input`:
/// randomized response with p_i on each discrete attribute, Laplace noise
/// with scale b_i on each numerical attribute.
///
/// Parameters are taken from `params.discrete_p` / `params.numeric_b`,
/// falling back to `params.default_p` / `params.default_b`. Every
/// attribute must be covered: GRR refuses to leave a column non-private,
/// because a single non-randomized column can de-randomize the others
/// (Theorem 1 interpretation).
Result<GrrOutput> ApplyGrr(const Table& input, const GrrParams& params,
                           const GrrOptions& options, Rng& rng);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_GRR_H_
