#include "table/value.h"

#include "common/string_util.h"

namespace privateclean {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      return Status::InvalidArgument("cannot read string value '" +
                                     AsString() + "' as numeric");
    case ValueType::kNull:
      return Status::FailedPrecondition("cannot read NULL as numeric");
  }
  return Status::Internal("unhandled value type");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "";
}

size_t Value::Hash() const {
  // Mix the type index so int64(0), double(0.0) and "" hash differently.
  size_t seed = data_.index() * 0x9E3779B97F4A7C15ULL;
  size_t h = 0;
  switch (type()) {
    case ValueType::kNull:
      h = 0;
      break;
    case ValueType::kInt64:
      h = std::hash<int64_t>{}(AsInt64());
      break;
    case ValueType::kDouble:
      h = std::hash<double>{}(AsDouble());
      break;
    case ValueType::kString:
      h = std::hash<std::string>{}(AsString());
      break;
  }
  return seed ^ (h + 0x9E3779B9U + (seed << 6) + (seed >> 2));
}

}  // namespace privateclean
