#ifndef PRIVATECLEAN_TABLE_TABLE_BUILDER_H_
#define PRIVATECLEAN_TABLE_TABLE_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// Row-at-a-time table construction with a fluent interface:
///
///   TableBuilder b(schema);
///   b.Row({Value("Mech. Eng."), Value(4.0)});
///   b.Row({Value("EECS"), Value(3.5)});
///   PCLEAN_ASSIGN_OR_RETURN(Table t, b.Finish());
///
/// Errors (type mismatches, wrong arity) are deferred to Finish() so row
/// chains stay readable; the first error wins.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row of boxed values in schema order.
  TableBuilder& Row(std::vector<Value> values);

  /// Reserves capacity for n rows.
  TableBuilder& Reserve(size_t n);

  /// Number of rows appended so far (including any that will fail).
  size_t num_rows() const { return num_rows_; }

  /// Validates and returns the built table; the builder is consumed.
  Result<Table> Finish();

 private:
  Schema schema_;
  Result<Table> table_;
  Status first_error_;
  size_t num_rows_ = 0;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_TABLE_BUILDER_H_
