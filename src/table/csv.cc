#include "table/csv.h"

#include <cctype>

#include "common/io_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace privateclean {

namespace {

bool NeedsQuoting(const std::string& field, const CsvOptions& options) {
  // Real values that would read back as NULL must be quoted: quoted
  // fields are never NULL (see ParseCell), which keeps the empty string
  // and a literal null marker distinguishable from actual nulls.
  if (field.empty() || field == options.null_literal) return true;
  // Leading/trailing whitespace must be quoted: the reader trims
  // unquoted fields.
  if (std::isspace(static_cast<unsigned char>(field.front())) ||
      std::isspace(static_cast<unsigned char>(field.back()))) {
    return true;
  }
  for (char c : field) {
    if (c == options.delimiter || c == '"' || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

/// Appends a non-null field, quoting when necessary.
void AppendField(std::string* out, const std::string& field,
                 const CsvOptions& options) {
  if (!NeedsQuoting(field, options)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// One parsed field: its text and whether it was quoted in the input
/// (quoted fields are never interpreted as NULL).
struct RawField {
  std::string text;
  bool quoted = false;
};

/// One record plus the 1-based input line it starts on (for error
/// messages; a quoted field may span lines, so record index != line).
struct RawRecord {
  std::vector<RawField> fields;
  size_t line = 1;
};

/// A blank input line parses as a record with one unquoted empty field.
/// For single-column schemas that is a legitimate NULL row; for wider
/// schemas it is a blank line to skip.
bool IsBlankRecord(const RawRecord& record) {
  return record.fields.size() == 1 && !record.fields[0].quoted &&
         record.fields[0].text.empty();
}

/// Source-location prefix for parse errors: "<context>:<line>: ".
std::string Loc(const CsvOptions& options, size_t line) {
  return (options.error_context.empty() ? "<csv>" : options.error_context) +
         ":" + std::to_string(line) + ": ";
}

/// Splits CSV text into records of fields, honoring quoting. With
/// `options.require_trailing_newline`, input whose last record lacks a
/// newline terminator (or whose quoting is still open) is DataLoss.
Result<std::vector<RawRecord>> ParseRecords(const std::string& text,
                                            const CsvOptions& options) {
  std::vector<RawRecord> out;
  RawRecord record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_content = false;
  size_t line = 1;

  auto end_field = [&]() {
    record.fields.push_back(RawField{
        field_was_quoted ? field : std::string(TrimWhitespace(field)),
        field_was_quoted});
    field.clear();
    field_was_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    out.push_back(std::move(record));
    record = RawRecord{};
    any_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_was_quoted = true;
      any_content = true;
    } else if (c == options.delimiter) {
      end_field();
      any_content = true;
    } else if (c == '\n') {
      // Every newline terminates a record; blank lines become records
      // with a single unquoted empty field (a NULL row for one-column
      // relations; schema-aware callers skip them otherwise).
      end_record();
      ++line;
      record.line = line;
    } else if (c == '\r') {
      // Swallow; '\n' terminates the record.
    } else {
      field.push_back(c);
      any_content = true;
    }
  }
  if (in_quotes) {
    return Status::DataLoss(
        Loc(options, record.line) +
        "unterminated quoted field at end of input (truncated file?)");
  }
  if (any_content || !field.empty() || !record.fields.empty()) {
    if (options.require_trailing_newline) {
      return Status::DataLoss(
          Loc(options, record.line) +
          "truncated final record: missing newline at end of file");
    }
    end_record();
  }
  return out;
}

Result<Value> ParseCell(const RawField& cell, const Field& field,
                        const CsvOptions& options) {
  // Quoted fields are never NULL; unquoted empty fields and the null
  // literal are.
  if (!cell.quoted &&
      (cell.text.empty() || cell.text == options.null_literal)) {
    return Value::Null();
  }
  switch (field.type) {
    case ValueType::kInt64: {
      PCLEAN_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cell.text));
      return Value(v);
    }
    case ValueType::kDouble: {
      PCLEAN_ASSIGN_OR_RETURN(double v, ParseDouble(cell.text));
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell.text);
    case ValueType::kNull:
      break;
  }
  return Status::Internal("field with null type");
}

}  // namespace

std::string TableToCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      AppendField(&out, table.schema().field(c).name, options);
    }
    out.push_back('\n');
  }
  // Row rendering is sharded; concatenating the per-shard chunks in
  // shard index order yields the exact serial byte stream.
  const size_t rows = table.num_rows();
  const size_t shards = ShardCountForRows(rows);
  std::vector<std::string> chunks(shards);
  // Shard bodies never fail, so the status is always OK.
  Status st = ParallelFor(
      rows, shards, options.exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        std::string& chunk = chunks[shard];
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < table.num_columns(); ++c) {
            if (c > 0) chunk.push_back(options.delimiter);
            Value v = table.column(c).ValueAt(r);
            if (v.is_null()) {
              // NULL is encoded as the *unquoted* null literal; AppendField
              // would quote it, which marks a real value (quoted fields are
              // never NULL).
              chunk.append(options.null_literal);
            } else {
              AppendField(&chunk, v.ToString(), options);
            }
          }
          chunk.push_back('\n');
        }
        return Status::OK();
      });
  (void)st;
  for (const std::string& chunk : chunks) out.append(chunk);
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  return io::WriteFileDurable(path, TableToCsv(table, options));
}

Result<Table> CsvToTable(const std::string& text, const Schema& schema,
                         const CsvOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(auto records, ParseRecords(text, options));
  size_t first_data = 0;
  if (options.header) {
    if (records.empty()) {
      return Status::IOError(Loc(options, 1) + "CSV input missing header row");
    }
    const auto& header = records[0].fields;
    if (header.size() != schema.num_fields()) {
      return Status::IOError(
          Loc(options, records[0].line) + "CSV header has " +
          std::to_string(header.size()) + " fields, schema expects " +
          std::to_string(schema.num_fields()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c].text != schema.field(c).name) {
        return Status::IOError(Loc(options, records[0].line) +
                               "CSV header field '" + header[c].text +
                               "' does not match schema field '" +
                               schema.field(c).name + "'");
      }
    }
    first_data = 1;
  }
  PCLEAN_ASSIGN_OR_RETURN(Table table, Table::MakeEmpty(schema));
  // Cell typing is sharded over the data records; each shard types its
  // records into a local row buffer, and the buffers are appended in
  // shard index order, which reproduces the serial row order exactly.
  // Shards are claimed in increasing index order, so on malformed input
  // the error reported is the serial one (lowest failing record).
  const size_t num_data = records.size() - first_data;
  const size_t shards = ShardCountForRows(num_data);
  std::vector<std::vector<std::vector<Value>>> shard_rows(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      num_data, shards, options.exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        std::vector<std::vector<Value>>& rows = shard_rows[shard];
        for (size_t i = begin; i < end; ++i) {
          const size_t r = first_data + i;
          const auto& record = records[r];
          if (schema.num_fields() != 1 && IsBlankRecord(record)) continue;
          if (record.fields.size() != schema.num_fields()) {
            return Status::IOError(
                Loc(options, record.line) + "CSV record has " +
                std::to_string(record.fields.size()) +
                " fields, expected " +
                std::to_string(schema.num_fields()));
          }
          std::vector<Value> row;
          row.reserve(record.fields.size());
          for (size_t c = 0; c < record.fields.size(); ++c) {
            auto cell = ParseCell(record.fields[c], schema.field(c), options);
            if (!cell.ok()) {
              // Keep the underlying code (strict numeric parses are
              // InvalidArgument) but pin the failure to file and line.
              return Status::WithCode(
                  cell.status().code(),
                  Loc(options, record.line) + "column '" +
                      schema.field(c).name + "': " + cell.status().message());
            }
            row.push_back(std::move(cell).ValueOrDie());
          }
          rows.push_back(std::move(row));
        }
        return Status::OK();
      }));
  for (const auto& rows : shard_rows) {
    for (const std::vector<Value>& row : rows) {
      PCLEAN_RETURN_NOT_OK(table.AppendRow(row));
    }
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options) {
  // Transient read errors are retried with bounded backoff; a missing
  // file is NotFound immediately.
  PCLEAN_ASSIGN_OR_RETURN(std::string text, io::ReadFileWithRetry(path));
  if (options.error_context.empty()) {
    CsvOptions located = options;
    located.error_context = path;
    return CsvToTable(text, schema, located);
  }
  return CsvToTable(text, schema, options);
}

Result<Schema> InferCsvSchema(const std::string& text,
                              const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument(
        "schema inference requires a header row for field names");
  }
  PCLEAN_ASSIGN_OR_RETURN(auto records, ParseRecords(text, options));
  if (records.empty()) return Status::IOError("empty CSV input");
  const auto& header = records[0].fields;
  std::vector<Field> fields;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = 1; r < records.size(); ++r) {
      if (header.size() != 1 && IsBlankRecord(records[r])) continue;
      if (c >= records[r].fields.size()) continue;
      const RawField& cell = records[r].fields[c];
      if (!cell.quoted &&
          (cell.text.empty() || cell.text == options.null_literal)) {
        continue;
      }
      any_value = true;
      if (all_int && !ParseInt64(cell.text).ok()) all_int = false;
      if (all_double && !ParseDouble(cell.text).ok()) all_double = false;
      if (!all_int && !all_double) break;
    }
    if (any_value && all_int) {
      fields.push_back(Field::Numerical(header[c].text, ValueType::kInt64));
    } else if (any_value && all_double) {
      fields.push_back(Field::Numerical(header[c].text, ValueType::kDouble));
    } else {
      fields.push_back(Field::Discrete(header[c].text, ValueType::kString));
    }
  }
  return Schema::Make(std::move(fields));
}

}  // namespace privateclean
