#include "table/csv.h"

#include <cctype>

#include "common/io_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace privateclean {

namespace {

bool NeedsQuoting(std::string_view field, const CsvOptions& options) {
  // Real values that would read back as NULL must be quoted: quoted
  // fields are never NULL (see ParseCell), which keeps the empty string
  // and a literal null marker distinguishable from actual nulls.
  if (field.empty() || field == options.null_literal) return true;
  // Leading/trailing whitespace must be quoted: the reader trims
  // unquoted fields.
  if (std::isspace(static_cast<unsigned char>(field.front())) ||
      std::isspace(static_cast<unsigned char>(field.back()))) {
    return true;
  }
  for (char c : field) {
    if (c == options.delimiter || c == '"' || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

/// Appends a non-null field, quoting when necessary.
void AppendField(std::string* out, std::string_view field,
                 const CsvOptions& options) {
  if (!NeedsQuoting(field, options)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Internal aliases for the public raw-record types (table/csv.h): the
/// field text plus whether it was quoted (quoted fields are never NULL),
/// and the record plus the 1-based input line it starts on (a quoted
/// field may span lines, so record index != line).
using RawField = CsvRawField;
using RawRecord = CsvRawRecord;

/// A blank input line parses as a record with one unquoted empty field.
/// For single-column schemas that is a legitimate NULL row; for wider
/// schemas it is a blank line to skip.
bool IsBlankRecord(const RawRecord& record) {
  return record.fields.size() == 1 && !record.fields[0].quoted &&
         record.fields[0].text.empty();
}

/// Source-location prefix for parse errors: "<context>:<line>: ".
std::string Loc(const CsvOptions& options, size_t line) {
  return (options.error_context.empty() ? "<csv>" : options.error_context) +
         ":" + std::to_string(line) + ": ";
}

/// Splits CSV text into records of fields, honoring quoting. With
/// `options.require_trailing_newline`, input whose last record lacks a
/// newline terminator (or whose quoting is still open) is DataLoss.
///
/// This is the single-pass reference parser; ParseRecordsSpeculative
/// below must be byte-identical to it (records, line numbers, error
/// statuses) — the differential fuzz suite enforces that.
Result<std::vector<RawRecord>> ParseRecordsSerial(const std::string& text,
                                                  const CsvOptions& options) {
  std::vector<RawRecord> out;
  RawRecord record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_content = false;
  size_t line = 1;

  auto end_field = [&]() {
    record.fields.push_back(RawField{
        field_was_quoted ? field : std::string(TrimWhitespace(field)),
        field_was_quoted});
    field.clear();
    field_was_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    out.push_back(std::move(record));
    record = RawRecord{};
    any_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_was_quoted = true;
      any_content = true;
    } else if (c == options.delimiter) {
      end_field();
      any_content = true;
    } else if (c == '\n') {
      // Every newline terminates a record; blank lines become records
      // with a single unquoted empty field (a NULL row for one-column
      // relations; schema-aware callers skip them otherwise).
      end_record();
      ++line;
      record.line = line;
    } else if (c == '\r') {
      // Swallow; '\n' terminates the record.
    } else {
      field.push_back(c);
      any_content = true;
    }
  }
  if (in_quotes) {
    return Status::DataLoss(
        Loc(options, record.line) +
        "unterminated quoted field at end of input (truncated file?)");
  }
  if (any_content || !field.empty() || !record.fields.empty()) {
    if (options.require_trailing_newline) {
      return Status::DataLoss(
          Loc(options, record.line) +
          "truncated final record: missing newline at end of file");
    }
    end_record();
  }
  return out;
}

// --- Two-phase speculative-split record parser ------------------------------
//
// The quote automaton has exactly two states (inside / outside a quoted
// field), so a chunk of bytes can be parsed under *both* possible starting
// parities in parallel; each chunk's scan doubles as its parity transfer
// function (start parity -> end parity). A cheap sequential pass then
// chains the transfer functions from chunk 0 (which provably starts
// outside quotes), selects each chunk's matching speculative scan, and the
// records are materialized in parallel from the resolved unquoted-'\n'
// terminators. The serial parser increments its line counter on *every*
// '\n' (quoted or not), so a record's line number is 1 + the count of
// '\n' bytes before it — per-chunk newline counts plus a prefix sum
// reproduce serial line tracking exactly.

/// Phase-1 scan of one chunk under one assumed starting parity. Tracks
/// only '"' and '\n'; delimiters, '\r', and field bytes don't affect
/// record framing.
struct ChunkScan {
  struct Terminator {
    /// Byte offset of an unquoted '\n' (a record terminator).
    size_t offset = 0;
    /// 1-based ordinal of that '\n' among *all* the chunk's '\n' bytes
    /// (quoted ones included), so the terminated record's successor line
    /// is newline_base + ordinal + 1.
    size_t newline_ordinal = 0;
  };
  std::vector<Terminator> terminators;
  /// Total '\n' bytes in the chunk (parity-independent).
  size_t newlines = 0;
  /// Quote parity after the chunk's last byte (the transfer function's
  /// value at this starting parity).
  bool end_in_quotes = false;
};

/// Chunk boundaries for the speculative parser: balanced byte ranges
/// (ShardBounds), nudged forward so no boundary falls between two
/// adjacent '"' bytes. An escaped-quote pair (`""`) is then always
/// chunk-local, so a chunk scan's one-byte lookahead never pairs a quote
/// with a byte another chunk already consumed — under either parity,
/// since the adjustment is purely syntactic. A pure function of the text
/// and chunk size: thread count never moves a boundary.
std::vector<size_t> SplitPoints(const std::string& text, size_t chunk_bytes) {
  const size_t chunks = ChunkCountForBytes(text.size(), chunk_bytes);
  std::vector<size_t> bounds;
  bounds.reserve(chunks + 1);
  bounds.push_back(0);
  for (size_t c = 1; c < chunks; ++c) {
    size_t b = ShardBounds(text.size(), chunks, c).begin;
    while (b > 0 && b < text.size() && text[b] == '"' && text[b - 1] == '"') {
      ++b;
    }
    // Adjustment only moves boundaries forward; keep them monotone (an
    // empty chunk is fine — it scans as the identity transfer function).
    bounds.push_back(std::max(b, bounds.back()));
  }
  bounds.push_back(text.size());
  return bounds;
}

/// Scans text[begin, end) assuming the chunk starts with quote parity
/// `start_in_quotes`, collecting record terminators and newline counts.
ChunkScan ScanChunk(const std::string& text, size_t begin, size_t end,
                    bool start_in_quotes) {
  ChunkScan scan;
  bool in_quotes = start_in_quotes;
  size_t newlines = 0;
  for (size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          ++i;  // Escaped quote; SplitPoints keeps the pair chunk-local.
        } else {
          in_quotes = false;
        }
      } else if (c == '\n') {
        ++newlines;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '\n') {
      ++newlines;
      scan.terminators.push_back(ChunkScan::Terminator{i, newlines});
    }
  }
  scan.newlines = newlines;
  scan.end_in_quotes = in_quotes;
  return scan;
}

/// Parses the byte range of exactly one record (its terminating '\n'
/// excluded) that is known to start outside quotes. The field loop is the
/// serial parser's, minus line tracking (the record's line is resolved
/// from the newline prefix sums) and minus the '\n' record branch (the
/// range contains no unquoted '\n' by construction).
RawRecord ParseOneRecord(const std::string& text, size_t begin, size_t end,
                         size_t line, const CsvOptions& options) {
  RawRecord record;
  record.line = line;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  auto end_field = [&]() {
    record.fields.push_back(RawField{
        field_was_quoted ? field : std::string(TrimWhitespace(field)),
        field_was_quoted});
    field.clear();
    field_was_quoted = false;
  };
  for (size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_was_quoted = true;
    } else if (c == options.delimiter) {
      end_field();
    } else if (c == '\r') {
      // Swallow, exactly like the serial parser.
    } else {
      field.push_back(c);
    }
  }
  end_field();
  return record;
}

/// The two-phase speculative-split parser. Byte-identical to
/// ParseRecordsSerial — same records, same line numbers, same error
/// statuses — at any thread count and any chunk size.
Result<std::vector<RawRecord>> ParseRecordsSpeculative(
    const std::string& text, const CsvOptions& options) {
  std::vector<RawRecord> out;
  if (text.empty()) return out;

  const std::vector<size_t> bounds =
      SplitPoints(text, options.split_chunk_bytes);
  const size_t chunks = bounds.size() - 1;

  // Phase 1 (parallel): scan every chunk under both possible starting
  // parities. Chunks are coarse items (each is a full pass over its
  // bytes), so they shard under the coarse cap. Scan bodies never fail.
  std::vector<ChunkScan> scans[2];
  scans[0].resize(chunks);
  scans[1].resize(chunks);
  Status scan_status = ParallelFor(
      chunks, ShardCountForCoarseItems(chunks), options.exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t c = begin; c < end; ++c) {
          scans[0][c] = ScanChunk(text, bounds[c], bounds[c + 1], false);
          scans[1][c] = ScanChunk(text, bounds[c], bounds[c + 1], true);
        }
        return Status::OK();
      });
  (void)scan_status;

  // Phase 2 (sequential, O(chunks)): chunk 0 starts outside quotes;
  // chain each chunk's end parity into the next chunk's start parity,
  // selecting the matching speculative scan, and prefix-sum newline and
  // terminator counts for global line numbers and record indexing.
  std::vector<const ChunkScan*> chosen(chunks);
  std::vector<size_t> newline_base(chunks);
  std::vector<size_t> terminator_base(chunks);
  bool parity = false;
  size_t total_newlines = 0;
  size_t total_terminators = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const ChunkScan& scan = scans[parity ? 1 : 0][c];
    chosen[c] = &scan;
    newline_base[c] = total_newlines;
    terminator_base[c] = total_terminators;
    total_newlines += scan.newlines;
    total_terminators += scan.terminators.size();
    parity = scan.end_in_quotes;
  }
  const bool final_in_quotes = parity;

  // Flatten the chosen scans' terminators into one global array carrying
  // each terminator's successor line (the line number of the record that
  // starts right after it): 1 + the '\n' count up to and including it.
  struct GlobalTerminator {
    size_t offset = 0;
    size_t line_after = 1;
  };
  std::vector<GlobalTerminator> terminators(total_terminators);
  Status fill_status = ParallelFor(
      chunks, ShardCountForCoarseItems(chunks), options.exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t c = begin; c < end; ++c) {
          const ChunkScan& scan = *chosen[c];
          for (size_t t = 0; t < scan.terminators.size(); ++t) {
            terminators[terminator_base[c] + t] = GlobalTerminator{
                scan.terminators[t].offset,
                1 + newline_base[c] + scan.terminators[t].newline_ordinal};
          }
        }
        return Status::OK();
      });
  (void)fill_status;

  // Tail = bytes after the last terminator. Serial checks the open-quote
  // error first, then truncation; record.line at EOF is the last
  // terminator's successor line (quoted '\n' in the tail never moves a
  // record's starting line).
  const size_t tail_begin =
      total_terminators == 0 ? 0 : terminators.back().offset + 1;
  const size_t tail_line =
      total_terminators == 0 ? 1 : terminators.back().line_after;
  if (final_in_quotes) {
    return Status::DataLoss(
        Loc(options, tail_line) +
        "unterminated quoted field at end of input (truncated file?)");
  }
  // The tail forms a final record exactly when it contains any byte other
  // than '\r': an unquoted '\n' cannot appear (it would be a terminator)
  // and a quoted '\n' implies a preceding '"' in the tail, so this matches
  // the serial parser's any-content test byte for byte.
  bool tail_content = false;
  for (size_t i = tail_begin; i < text.size(); ++i) {
    if (text[i] != '\r') {
      tail_content = true;
      break;
    }
  }
  if (tail_content && options.require_trailing_newline) {
    return Status::DataLoss(
        Loc(options, tail_line) +
        "truncated final record: missing newline at end of file");
  }

  // Phase 3 (parallel): materialize records. Record r spans the bytes
  // between terminators r-1 and r; its line is terminator r-1's successor
  // line. Per-shard buffers are appended in shard index order, which
  // reproduces the serial record order exactly.
  const size_t num_records = total_terminators + (tail_content ? 1 : 0);
  if (num_records == 0) return out;
  const size_t shards = ShardCountForRows(num_records);
  std::vector<std::vector<RawRecord>> shard_records(shards);
  Status parse_status = ParallelFor(
      num_records, shards, options.exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        std::vector<RawRecord>& local = shard_records[shard];
        local.reserve(end - begin);
        for (size_t r = begin; r < end; ++r) {
          const size_t byte_begin = r == 0 ? 0 : terminators[r - 1].offset + 1;
          const size_t byte_end =
              r < total_terminators ? terminators[r].offset : text.size();
          const size_t line = r == 0 ? 1 : terminators[r - 1].line_after;
          local.push_back(
              ParseOneRecord(text, byte_begin, byte_end, line, options));
        }
        return Status::OK();
      });
  (void)parse_status;
  out.reserve(num_records);
  for (std::vector<RawRecord>& chunk : shard_records) {
    for (RawRecord& record : chunk) out.push_back(std::move(record));
  }
  return out;
}

/// Whether the speculative splitter applies. Record framing only depends
/// on '"' and '\n' when the delimiter is neither, so those (pathological)
/// configurations always parse serially; otherwise kAuto requires real
/// parallelism and enough bytes to amortize the chunk bookkeeping.
bool UseSpeculativeSplit(const std::string& text, const CsvOptions& options) {
  if (options.delimiter == '"' || options.delimiter == '\n') return false;
  switch (options.split) {
    case CsvSplitMode::kSerial:
      return false;
    case CsvSplitMode::kSpeculative:
      return true;
    case CsvSplitMode::kAuto:
      break;
  }
  return options.exec.EffectiveThreads() > 1 &&
         text.size() >= options.split_min_bytes;
}

/// Record-splitting dispatcher for CsvToTable / InferCsvSchema /
/// SplitCsvRecords.
Result<std::vector<RawRecord>> ParseRecords(const std::string& text,
                                            const CsvOptions& options) {
  if (UseSpeculativeSplit(text, options)) {
    return ParseRecordsSpeculative(text, options);
  }
  return ParseRecordsSerial(text, options);
}

Result<Value> ParseCell(const RawField& cell, const Field& field,
                        const CsvOptions& options) {
  // Quoted fields are never NULL; unquoted empty fields and the null
  // literal are.
  if (!cell.quoted &&
      (cell.text.empty() || cell.text == options.null_literal)) {
    return Value::Null();
  }
  switch (field.type) {
    case ValueType::kInt64: {
      PCLEAN_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cell.text));
      return Value(v);
    }
    case ValueType::kDouble: {
      PCLEAN_ASSIGN_OR_RETURN(double v, ParseDouble(cell.text));
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell.text);
    case ValueType::kNull:
      break;
  }
  return Status::Internal("field with null type");
}

}  // namespace

Result<std::vector<CsvRawRecord>> SplitCsvRecords(const std::string& text,
                                                  const CsvOptions& options) {
  return ParseRecords(text, options);
}

std::string TableToCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      AppendField(&out, table.schema().field(c).name, options);
    }
    out.push_back('\n');
  }
  // Row rendering is sharded; concatenating the per-shard chunks in
  // shard index order yields the exact serial byte stream.
  const size_t rows = table.num_rows();
  const size_t shards = ShardCountForRows(rows);
  std::vector<std::string> chunks(shards);
  // Shard bodies never fail, so the status is always OK.
  Status st = ParallelFor(
      rows, shards, options.exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        std::string& chunk = chunks[shard];
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < table.num_columns(); ++c) {
            if (c > 0) chunk.push_back(options.delimiter);
            const Column& col = table.column(c);
            if (col.IsNull(r)) {
              // NULL is encoded as the *unquoted* null literal; AppendField
              // would quote it, which marks a real value (quoted fields are
              // never NULL).
              chunk.append(options.null_literal);
            } else if (col.type() == ValueType::kString) {
              // Render straight from the dictionary bytes — no Value
              // boxing, no per-cell string copy.
              AppendField(&chunk, col.StringAt(r), options);
            } else {
              AppendField(&chunk, col.ValueAt(r).ToString(), options);
            }
          }
          chunk.push_back('\n');
        }
        return Status::OK();
      });
  (void)st;
  for (const std::string& chunk : chunks) out.append(chunk);
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  return io::WriteFileDurable(path, TableToCsv(table, options));
}

Result<Table> CsvToTable(const std::string& text, const Schema& schema,
                         const CsvOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(auto records, ParseRecords(text, options));
  size_t first_data = 0;
  if (options.header) {
    if (records.empty()) {
      return Status::IOError(Loc(options, 1) + "CSV input missing header row");
    }
    const auto& header = records[0].fields;
    if (header.size() != schema.num_fields()) {
      return Status::IOError(
          Loc(options, records[0].line) + "CSV header has " +
          std::to_string(header.size()) + " fields, schema expects " +
          std::to_string(schema.num_fields()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c].text != schema.field(c).name) {
        return Status::IOError(Loc(options, records[0].line) +
                               "CSV header field '" + header[c].text +
                               "' does not match schema field '" +
                               schema.field(c).name + "'");
      }
    }
    first_data = 1;
  }
  PCLEAN_ASSIGN_OR_RETURN(Table table, Table::MakeEmpty(schema));
  // Cell typing is sharded over the data records; each shard types its
  // records into a local row buffer, and the buffers are appended in
  // shard index order, which reproduces the serial row order exactly.
  // Shards are claimed in increasing index order, so on malformed input
  // the error reported is the serial one (lowest failing record).
  const size_t num_data = records.size() - first_data;
  const size_t shards = ShardCountForRows(num_data);
  std::vector<std::vector<std::vector<Value>>> shard_rows(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      num_data, shards, options.exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        std::vector<std::vector<Value>>& rows = shard_rows[shard];
        for (size_t i = begin; i < end; ++i) {
          const size_t r = first_data + i;
          const auto& record = records[r];
          if (schema.num_fields() != 1 && IsBlankRecord(record)) continue;
          if (record.fields.size() != schema.num_fields()) {
            return Status::IOError(
                Loc(options, record.line) + "CSV record has " +
                std::to_string(record.fields.size()) +
                " fields, expected " +
                std::to_string(schema.num_fields()));
          }
          std::vector<Value> row;
          row.reserve(record.fields.size());
          for (size_t c = 0; c < record.fields.size(); ++c) {
            auto cell = ParseCell(record.fields[c], schema.field(c), options);
            if (!cell.ok()) {
              // Keep the underlying code (strict numeric parses are
              // InvalidArgument) but pin the failure to file and line.
              return Status::WithCode(
                  cell.status().code(),
                  Loc(options, record.line) + "column '" +
                      schema.field(c).name + "': " + cell.status().message());
            }
            row.push_back(std::move(cell).ValueOrDie());
          }
          rows.push_back(std::move(row));
        }
        return Status::OK();
      }));
  for (const auto& rows : shard_rows) {
    for (const std::vector<Value>& row : rows) {
      PCLEAN_RETURN_NOT_OK(table.AppendRow(row));
    }
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options) {
  // Transient read errors are retried with bounded backoff; a missing
  // file is NotFound immediately.
  PCLEAN_ASSIGN_OR_RETURN(std::string text, io::ReadFileWithRetry(path));
  if (options.error_context.empty()) {
    CsvOptions located = options;
    located.error_context = path;
    return CsvToTable(text, schema, located);
  }
  return CsvToTable(text, schema, options);
}

Result<Schema> InferCsvSchema(const std::string& text,
                              const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument(
        "schema inference requires a header row for field names");
  }
  PCLEAN_ASSIGN_OR_RETURN(auto records, ParseRecords(text, options));
  if (records.empty()) return Status::IOError("empty CSV input");
  const auto& header = records[0].fields;
  std::vector<Field> fields;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = 1; r < records.size(); ++r) {
      if (header.size() != 1 && IsBlankRecord(records[r])) continue;
      if (c >= records[r].fields.size()) continue;
      const RawField& cell = records[r].fields[c];
      if (!cell.quoted &&
          (cell.text.empty() || cell.text == options.null_literal)) {
        continue;
      }
      any_value = true;
      if (all_int && !ParseInt64(cell.text).ok()) all_int = false;
      if (all_double && !ParseDouble(cell.text).ok()) all_double = false;
      if (!all_int && !all_double) break;
    }
    if (any_value && all_int) {
      fields.push_back(Field::Numerical(header[c].text, ValueType::kInt64));
    } else if (any_value && all_double) {
      fields.push_back(Field::Numerical(header[c].text, ValueType::kDouble));
    } else {
      fields.push_back(Field::Discrete(header[c].text, ValueType::kString));
    }
  }
  return Schema::Make(std::move(fields));
}

}  // namespace privateclean
