#ifndef PRIVATECLEAN_TABLE_SCHEMA_H_
#define PRIVATECLEAN_TABLE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace privateclean {

/// PrivateClean's attribute taxonomy (paper Section 3.1): numerical
/// attributes A receive the Laplace mechanism; discrete attributes D
/// receive randomized response and are the only attributes user-defined
/// cleaning may touch.
enum class AttributeKind {
  kNumerical = 0,
  kDiscrete = 1,
};

const char* AttributeKindToString(AttributeKind kind);

/// One attribute: a name, a physical type, and its privacy/cleaning role.
struct Field {
  std::string name;
  ValueType type = ValueType::kString;
  AttributeKind kind = AttributeKind::kDiscrete;

  /// Convenience factories.
  static Field Numerical(std::string name, ValueType type = ValueType::kDouble);
  static Field Discrete(std::string name, ValueType type = ValueType::kString);

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type && a.kind == b.kind;
  }
};

/// Ordered list of fields with O(1) lookup by name.
///
/// Invariants: field names are unique and non-empty; numerical fields have
/// int64 or double physical type (enforced at construction via Make()).
class Schema {
 public:
  Schema() = default;

  /// Validates and builds a schema.
  static Result<Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// The field named `name`, or NotFound.
  Result<Field> FieldByName(const std::string& name) const;

  /// True if a field with this name exists.
  bool HasField(const std::string& name) const;

  /// Indices of all discrete / all numerical fields, in schema order.
  std::vector<size_t> DiscreteIndices() const;
  std::vector<size_t> NumericalIndices() const;

  /// Returns a new schema with `field` appended (used by Extract cleaners,
  /// which create new discrete attributes).
  Result<Schema> AddField(const Field& field) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_SCHEMA_H_
