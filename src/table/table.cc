#include "table/table.h"

#include <algorithm>
#include <sstream>

namespace privateclean {

Result<Table> Table::MakeEmpty(const Schema& schema) {
  Table t;
  t.schema_ = schema;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    PCLEAN_ASSIGN_OR_RETURN(Column col, Column::Make(schema.field(i).type));
    t.columns_.push_back(std::move(col));
  }
  return t;
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_fields()) +
        " fields but " + std::to_string(columns.size()) +
        " columns were provided");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " type does not match field '" +
                                     schema.field(i).name + "'");
    }
    if (columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument("columns have unequal lengths");
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  return t;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  PCLEAN_ASSIGN_OR_RETURN(size_t i, schema_.FieldIndex(name));
  return &columns_[i];
}

Result<Column*> Table::MutableColumnByName(const std::string& name) {
  PCLEAN_ASSIGN_OR_RETURN(size_t i, schema_.FieldIndex(name));
  return &columns_[i];
}

Result<Value> Table::GetValue(size_t row, const std::string& field) const {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, ColumnByName(field));
  if (row >= col->size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  return col->ValueAt(row);
}

Status Table::SetValue(size_t row, const std::string& field,
                       const Value& v) {
  PCLEAN_ASSIGN_OR_RETURN(Column * col, MutableColumnByName(field));
  return col->SetValue(row, v);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, expected " +
        std::to_string(columns_.size()));
  }
  // Validate all cells before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != columns_[i].type()) {
      return Status::InvalidArgument(
          "value for field '" + schema_.field(i).name + "' has type " +
          ValueTypeToString(row[i].type()) + ", expected " +
          ValueTypeToString(columns_[i].type()));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    PCLEAN_RETURN_NOT_OK(columns_[i].AppendValue(row[i]));
  }
  return Status::OK();
}

Status Table::AddColumn(const Field& field, Column column) {
  if (column.type() != field.type) {
    return Status::InvalidArgument("column type does not match field '" +
                                   field.name + "'");
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "new column has " + std::to_string(column.size()) +
        " rows, table has " + std::to_string(num_rows()));
  }
  PCLEAN_ASSIGN_OR_RETURN(Schema new_schema, schema_.AddField(field));
  schema_ = std::move(new_schema);
  columns_.push_back(std::move(column));
  return Status::OK();
}

Table Table::Clone() const {
  Table t;
  t.schema_ = schema_;
  t.columns_ = columns_;
  return t;
}

Result<Table> Table::Filter(const std::vector<uint8_t>& keep) const {
  if (keep.size() != num_rows()) {
    return Status::InvalidArgument("filter mask length mismatch");
  }
  std::vector<size_t> rows;
  for (size_t r = 0; r < keep.size(); ++r) {
    if (keep[r]) rows.push_back(r);
  }
  Table t;
  t.schema_ = schema_;
  t.columns_.reserve(columns_.size());
  // Column-level row selection: numeric payloads copy densely and string
  // columns carry their dictionary over wholesale, so no Value boxing or
  // re-interning happens per cell.
  for (const Column& src : columns_) t.columns_.push_back(src.SelectRows(rows));
  return t;
}

Result<Table> Table::Take(const std::vector<size_t>& row_indices) const {
  for (size_t r : row_indices) {
    if (r >= num_rows()) {
      return Status::OutOfRange("row index " + std::to_string(r) +
                                " out of range");
    }
  }
  Table t;
  t.schema_ = schema_;
  t.columns_.reserve(columns_.size());
  for (const Column& src : columns_) {
    t.columns_.push_back(src.SelectRows(row_indices));
  }
  return t;
}

ColumnMemory Table::MemoryUsage() const {
  ColumnMemory total;
  for (const Column& c : columns_) {
    ColumnMemory m = c.MemoryUsage();
    total.payload_bytes += m.payload_bytes;
    total.dictionary_bytes += m.dictionary_bytes;
    total.dictionary_entries += m.dictionary_entries;
  }
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over the header and the shown rows.
  size_t rows = std::min(max_rows, num_rows());
  std::vector<std::vector<std::string>> cells(rows + 1);
  cells[0].reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    cells[0].push_back(schema_.field(c).name);
  }
  for (size_t r = 0; r < rows; ++r) {
    cells[r + 1].reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      Value v = columns_[c].ValueAt(r);
      cells[r + 1].push_back(v.is_null() ? "NULL" : v.ToString());
    }
  }
  std::vector<size_t> widths(num_columns(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[r][c];
      out << std::string(widths[c] - cells[r][c].size(), ' ');
    }
    out << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < num_columns(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
      }
      out << std::string(total, '-') << "\n";
    }
  }
  if (num_rows() > rows) {
    out << "... (" << num_rows() - rows << " more rows)\n";
  }
  return out.str();
}

}  // namespace privateclean
