#ifndef PRIVATECLEAN_TABLE_TABLE_H_
#define PRIVATECLEAN_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/column.h"
#include "table/schema.h"

namespace privateclean {

/// In-memory columnar relation: a Schema plus one Column per field, all of
/// equal length. This is the substrate every other PrivateClean module
/// operates on — the provider's original relation R, the private relation
/// V, and the cleaned private relation V_clean are all `Table`s.
class Table {
 public:
  Table() = default;

  /// Builds an empty table for `schema`.
  static Result<Table> MakeEmpty(const Schema& schema);

  /// Builds a table from pre-populated columns (validated: one column per
  /// field, matching types, equal lengths).
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }

  /// Column lookup by field name.
  Result<const Column*> ColumnByName(const std::string& name) const;
  Result<Column*> MutableColumnByName(const std::string& name);

  /// Boxed cell accessors.
  Result<Value> GetValue(size_t row, const std::string& field) const;
  Status SetValue(size_t row, const std::string& field, const Value& v);

  /// Appends one row given boxed values in schema order.
  Status AppendRow(const std::vector<Value>& row);

  /// Adds a new column (used by Extract cleaners). The column must have
  /// num_rows() entries.
  Status AddColumn(const Field& field, Column column);

  /// Returns a deep copy. Tables are heavyweight; the explicit name keeps
  /// copies visible at call sites (the copy constructor is disabled).
  Table Clone() const;

  /// Returns a new table containing only rows where `keep[row]` is true.
  Result<Table> Filter(const std::vector<uint8_t>& keep) const;

  /// Returns a new table with the given rows, in order. Indices may
  /// repeat (bootstrap resampling) and must be < num_rows().
  Result<Table> Take(const std::vector<size_t>& row_indices) const;

  /// Renders the first `max_rows` rows as an aligned ASCII grid (debugging
  /// and example output).
  std::string ToString(size_t max_rows = 10) const;

  /// Summed per-column memory accounting (payload vectors plus string
  /// dictionary arenas).
  ColumnMemory MemoryUsage() const;

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_TABLE_H_
