#ifndef PRIVATECLEAN_TABLE_CSV_H_
#define PRIVATECLEAN_TABLE_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "table/table.h"

namespace privateclean {

/// How the reader cuts CSV text into records before cell typing.
enum class CsvSplitMode {
  /// Speculative split when it can pay off: more than one effective
  /// thread and at least `split_min_bytes` of input; serial otherwise.
  kAuto,
  /// Always the single-pass serial parser (the reference semantics).
  kSerial,
  /// Always the two-phase speculative-split parser, even single-threaded.
  /// The differential fuzz suite forces this (with tiny chunk sizes) to
  /// prove byte-identical behavior against kSerial.
  kSpeculative,
};

/// CSV parsing/serialization options (RFC-4180 quoting).
struct CsvOptions {
  char delimiter = ',';
  /// Whether the first record is a header row. On read with an explicit
  /// schema the header names must match the schema names.
  bool header = true;
  /// String that encodes NULL (in addition to the empty field).
  std::string null_literal = "";
  /// Threading (common/thread_pool.h). Cell typing on read and row
  /// rendering on write are sharded, with per-shard output concatenated
  /// in shard index order. Record splitting — where quote state carries
  /// across bytes — is sharded too via the two-phase speculative-split
  /// parser (see `split`), which resolves per-chunk quote parities
  /// sequentially and is byte-identical to the serial parser at every
  /// thread count.
  ExecutionOptions exec;
  /// Record-splitting strategy. kAuto falls back to serial for inputs
  /// under `split_min_bytes` or when only one thread is effective.
  CsvSplitMode split = CsvSplitMode::kAuto;
  /// kAuto threshold: inputs smaller than this parse serially (chunk
  /// bookkeeping costs more than it saves).
  size_t split_min_bytes = 64 * 1024;
  /// Chunk granularity for the speculative splitter; 0 picks
  /// kBytesPerSplitChunk. Tests shrink it to force record and quote
  /// state across chunk boundaries on small inputs. Chunk layout is a
  /// function of the input bytes alone, never the thread count.
  size_t split_chunk_bytes = 0;
  /// Source name used in parse-error messages ("<name>:<line>: ...").
  /// ReadCsvFile fills it with the file path when empty; inline text
  /// defaults to "<csv>". Line numbers are 1-based input lines (a quoted
  /// field spanning lines reports the line its record starts on).
  std::string error_context;
  /// Treat a final record that is not newline-terminated (or a quoted
  /// field still open at end of input) as a truncated file and fail with
  /// DataLoss. The release reader sets this — release files always end
  /// with '\n' — so a torn tail can't silently drop the last row's
  /// terminator and parse as a complete record.
  bool require_trailing_newline = false;
};

/// Serializes a table to CSV text. Null cells render as
/// `options.null_literal`; fields containing the delimiter, quotes or
/// newlines are quoted with doubled inner quotes.
std::string TableToCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Parses CSV text into a table with a caller-provided schema. Every
/// record must have exactly one field per schema column; numeric fields
/// are parsed strictly. Empty fields (or `null_literal`) become NULL.
Result<Table> CsvToTable(const std::string& text, const Schema& schema,
                         const CsvOptions& options = {});

/// Reads a CSV file into a table with a caller-provided schema.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options = {});

/// One raw field as produced by the record splitter, before cell typing:
/// the field text (quoted fields unescaped, unquoted fields trimmed) and
/// whether it was quoted (quoted fields are never NULL).
struct CsvRawField {
  std::string text;
  bool quoted = false;
};

/// One raw record: its fields and the 1-based input line it starts on
/// (quoted fields may span lines; the record keeps its starting line).
struct CsvRawRecord {
  std::vector<CsvRawField> fields;
  size_t line = 1;
};

/// Splits CSV text into raw records per `options.split` without typing
/// cells — the record-splitting stage of CsvToTable, exposed so the
/// differential fuzz suite can compare the serial and speculative-split
/// parsers field-for-field (and error-for-error) on arbitrary inputs.
Result<std::vector<CsvRawRecord>> SplitCsvRecords(
    const std::string& text, const CsvOptions& options = {});

/// Infers a schema from CSV text: a column parseable entirely as int64
/// becomes a numerical int64 field; else entirely as double, a numerical
/// double field; otherwise a discrete string field. Requires a header row.
Result<Schema> InferCsvSchema(const std::string& text,
                              const CsvOptions& options = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_CSV_H_
