#ifndef PRIVATECLEAN_TABLE_CSV_H_
#define PRIVATECLEAN_TABLE_CSV_H_

#include <string>

#include "common/result.h"
#include "common/thread_pool.h"
#include "table/table.h"

namespace privateclean {

/// CSV parsing/serialization options (RFC-4180 quoting).
struct CsvOptions {
  char delimiter = ',';
  /// Whether the first record is a header row. On read with an explicit
  /// schema the header names must match the schema names.
  bool header = true;
  /// String that encodes NULL (in addition to the empty field).
  std::string null_literal = "";
  /// Threading (common/thread_pool.h). Record splitting is inherently
  /// sequential (quote state carries across bytes) and stays serial;
  /// cell typing on read and row rendering on write are sharded, with
  /// per-shard output concatenated in shard index order so the bytes
  /// (write) and Table (read) are identical at every thread count.
  ExecutionOptions exec;
  /// Source name used in parse-error messages ("<name>:<line>: ...").
  /// ReadCsvFile fills it with the file path when empty; inline text
  /// defaults to "<csv>". Line numbers are 1-based input lines (a quoted
  /// field spanning lines reports the line its record starts on).
  std::string error_context;
  /// Treat a final record that is not newline-terminated (or a quoted
  /// field still open at end of input) as a truncated file and fail with
  /// DataLoss. The release reader sets this — release files always end
  /// with '\n' — so a torn tail can't silently drop the last row's
  /// terminator and parse as a complete record.
  bool require_trailing_newline = false;
};

/// Serializes a table to CSV text. Null cells render as
/// `options.null_literal`; fields containing the delimiter, quotes or
/// newlines are quoted with doubled inner quotes.
std::string TableToCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Parses CSV text into a table with a caller-provided schema. Every
/// record must have exactly one field per schema column; numeric fields
/// are parsed strictly. Empty fields (or `null_literal`) become NULL.
Result<Table> CsvToTable(const std::string& text, const Schema& schema,
                         const CsvOptions& options = {});

/// Reads a CSV file into a table with a caller-provided schema.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options = {});

/// Infers a schema from CSV text: a column parseable entirely as int64
/// becomes a numerical int64 field; else entirely as double, a numerical
/// double field; otherwise a discrete string field. Requires a header row.
Result<Schema> InferCsvSchema(const std::string& text,
                              const CsvOptions& options = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_CSV_H_
