#include "table/dictionary.h"

namespace privateclean {

StringDictionary::StringDictionary() : arena_("table/dictionary") {}

StringDictionary::StringDictionary(const StringDictionary& other)
    : arena_("table/dictionary") {
  values_.reserve(other.values_.size());
  index_.reserve(other.values_.size());
  for (std::string_view v : other.values_) {
    std::string_view copy = arena_.CopyString(v);
    index_.emplace(copy, static_cast<uint32_t>(values_.size()));
    values_.push_back(copy);
  }
}

StringDictionary& StringDictionary::operator=(const StringDictionary& other) {
  if (this != &other) {
    StringDictionary copy(other);
    *this = std::move(copy);
  }
  return *this;
}

uint32_t StringDictionary::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  std::string_view copy = arena_.CopyString(s);
  uint32_t code = static_cast<uint32_t>(values_.size());
  index_.emplace(copy, code);
  values_.push_back(copy);
  return code;
}

uint32_t StringDictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNullCode : it->second;
}

}  // namespace privateclean
