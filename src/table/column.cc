#include "table/column.h"

#include "common/check.h"

namespace privateclean {

Result<Column> Column::Make(ValueType type) {
  if (type == ValueType::kNull) {
    return Status::InvalidArgument("column type cannot be null");
  }
  return Column(type);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  valid_.push_back(0);
  ++null_count_;
}

void Column::AppendInt64(int64_t v) {
  PCLEAN_CHECK(type_ == ValueType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  PCLEAN_CHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  PCLEAN_CHECK(type_ == ValueType::kString);
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("cannot append ") + ValueTypeToString(v.type()) +
        " value to " + ValueTypeToString(type_) + " column");
  }
  switch (type_) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  return Status::OK();
}

double Column::NumericAt(size_t row) const {
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(ints_[row]);
    case ValueType::kDouble:
      return doubles_[row];
    default:
      PCLEAN_CHECK(false);
      return 0.0;
  }
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[row]);
    case ValueType::kDouble:
      return Value(doubles_[row]);
    case ValueType::kString:
      return Value(strings_[row]);
    case ValueType::kNull:
      break;
  }
  PCLEAN_CHECK(false);
  return Value::Null();
}

Status Column::SetValue(size_t row, const Value& v) {
  if (row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for column of size " +
                              std::to_string(size()));
  }
  bool was_null = IsNull(row);
  if (v.is_null()) {
    switch (type_) {
      case ValueType::kInt64:
        ints_[row] = 0;
        break;
      case ValueType::kDouble:
        doubles_[row] = 0.0;
        break;
      case ValueType::kString:
        strings_[row].clear();
        break;
      case ValueType::kNull:
        PCLEAN_CHECK(false);
    }
    valid_[row] = 0;
    if (!was_null) ++null_count_;
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("cannot set ") + ValueTypeToString(v.type()) +
        " value in " + ValueTypeToString(type_) + " column");
  }
  switch (type_) {
    case ValueType::kInt64:
      ints_[row] = v.AsInt64();
      break;
    case ValueType::kDouble:
      doubles_[row] = v.AsDouble();
      break;
    case ValueType::kString:
      strings_[row] = v.AsString();
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  valid_[row] = 1;
  if (was_null) --null_count_;
  return Status::OK();
}

void Column::RecomputeNullCount() {
  size_t nulls = 0;
  for (uint8_t v : valid_) nulls += (v == 0) ? 1 : 0;
  null_count_ = nulls;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

}  // namespace privateclean
