#include "table/column.h"

#include "common/check.h"

namespace privateclean {

Result<Column> Column::Make(ValueType type) {
  if (type == ValueType::kNull) {
    return Status::InvalidArgument("column type cannot be null");
  }
  return Column(type);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      codes_.push_back(kNullCode);
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  valid_.push_back(0);
  ++null_count_;
}

void Column::AppendInt64(int64_t v) {
  PCLEAN_CHECK(type_ == ValueType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  PCLEAN_CHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string_view v) {
  PCLEAN_CHECK(type_ == ValueType::kString);
  codes_.push_back(dict_.Intern(v));
  valid_.push_back(1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("cannot append ") + ValueTypeToString(v.type()) +
        " value to " + ValueTypeToString(type_) + " column");
  }
  switch (type_) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  return Status::OK();
}

double Column::NumericAt(size_t row) const {
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(ints_[row]);
    case ValueType::kDouble:
      return doubles_[row];
    default:
      PCLEAN_CHECK(false);
      return 0.0;
  }
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[row]);
    case ValueType::kDouble:
      return Value(doubles_[row]);
    case ValueType::kString:
      return Value(std::string(dict_.At(codes_[row])));
    case ValueType::kNull:
      break;
  }
  PCLEAN_CHECK(false);
  return Value::Null();
}

Status Column::SetValue(size_t row, const Value& v) {
  if (row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for column of size " +
                              std::to_string(size()));
  }
  bool was_null = IsNull(row);
  if (v.is_null()) {
    switch (type_) {
      case ValueType::kInt64:
        ints_[row] = 0;
        break;
      case ValueType::kDouble:
        doubles_[row] = 0.0;
        break;
      case ValueType::kString:
        codes_[row] = kNullCode;
        break;
      case ValueType::kNull:
        PCLEAN_CHECK(false);
    }
    valid_[row] = 0;
    if (!was_null) ++null_count_;
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("cannot set ") + ValueTypeToString(v.type()) +
        " value in " + ValueTypeToString(type_) + " column");
  }
  switch (type_) {
    case ValueType::kInt64:
      ints_[row] = v.AsInt64();
      break;
    case ValueType::kDouble:
      doubles_[row] = v.AsDouble();
      break;
    case ValueType::kString:
      codes_[row] = dict_.Intern(v.AsString());
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  valid_[row] = 1;
  if (was_null) --null_count_;
  return Status::OK();
}

uint32_t Column::InternString(std::string_view v) {
  PCLEAN_CHECK(type_ == ValueType::kString);
  return dict_.Intern(v);
}

Status Column::RebindDictionary(
    const std::vector<std::string_view>& entries) {
  if (type_ != ValueType::kString) {
    return Status::InvalidArgument(
        "RebindDictionary requires a string column");
  }
  StringDictionary next;
  for (std::string_view e : entries) {
    uint32_t before = static_cast<uint32_t>(next.size());
    if (next.Intern(e) != before) {
      return Status::InvalidArgument(
          "dictionary entries contain duplicate value '" + std::string(e) +
          "'");
    }
  }
  // Old code -> new code. Every string in use must survive the rebind.
  std::vector<uint32_t> remap(dict_.size(), kNullCode);
  for (uint32_t old = 0; old < dict_.size(); ++old) {
    remap[old] = next.Find(dict_.At(old));
  }
  for (size_t r = 0; r < codes_.size(); ++r) {
    if (codes_[r] == kNullCode) continue;
    uint32_t mapped = remap[codes_[r]];
    if (mapped == kNullCode) {
      return Status::InvalidArgument(
          "column value '" + std::string(dict_.At(codes_[r])) +
          "' missing from replacement dictionary");
    }
    codes_[r] = mapped;
  }
  dict_ = std::move(next);
  return Status::OK();
}

Column Column::SelectRows(const std::vector<size_t>& rows) const {
  Column out(type_);
  out.valid_.reserve(rows.size());
  switch (type_) {
    case ValueType::kInt64:
      out.ints_.reserve(rows.size());
      for (size_t r : rows) out.ints_.push_back(ints_[r]);
      break;
    case ValueType::kDouble:
      out.doubles_.reserve(rows.size());
      for (size_t r : rows) out.doubles_.push_back(doubles_[r]);
      break;
    case ValueType::kString:
      out.dict_ = dict_;
      out.codes_.reserve(rows.size());
      for (size_t r : rows) out.codes_.push_back(codes_[r]);
      break;
    case ValueType::kNull:
      PCLEAN_CHECK(false);
  }
  for (size_t r : rows) {
    out.valid_.push_back(valid_[r]);
    if (valid_[r] == 0) ++out.null_count_;
  }
  return out;
}

void Column::RecomputeNullCount() {
  size_t nulls = 0;
  for (uint8_t v : valid_) nulls += (v == 0) ? 1 : 0;
  null_count_ = nulls;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

ColumnMemory Column::MemoryUsage() const {
  ColumnMemory m;
  m.payload_bytes = ints_.capacity() * sizeof(int64_t) +
                    doubles_.capacity() * sizeof(double) +
                    codes_.capacity() * sizeof(uint32_t) +
                    valid_.capacity() * sizeof(uint8_t);
  m.dictionary_bytes = dict_.arena_bytes();
  m.dictionary_entries = dict_.size();
  return m;
}

}  // namespace privateclean
