#include "table/domain.h"

namespace privateclean {

Result<Domain> Domain::FromColumn(const Table& table,
                                  const std::string& field,
                                  bool include_null) {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(field));
  if (col->type() == ValueType::kString) {
    // Dictionary fast path: tally per-code frequencies with vector
    // indexing (no per-row hashing), recording codes in row-order
    // first-appearance order — exactly the order the boxed loop below
    // would produce. The extra slot past the dictionary is null.
    const std::vector<uint32_t>& codes = col->codes();
    const StringDictionary& dict = col->dictionary();
    const size_t null_slot = dict.size();
    std::vector<size_t> counts(dict.size() + 1, 0);
    std::vector<size_t> order;
    for (uint32_t code : codes) {
      size_t slot = code == kNullCode ? null_slot : code;
      if (slot == null_slot && !include_null) continue;
      if (counts[slot]++ == 0) order.push_back(slot);
    }
    Domain d;
    for (size_t slot : order) {
      d.AddCount(slot == null_slot ? Value::Null()
                                   : Value(std::string(dict.At(slot))),
                 counts[slot]);
    }
    return d;
  }
  Domain d;
  for (size_t r = 0; r < col->size(); ++r) {
    if (col->IsNull(r) && !include_null) continue;
    d.Add(col->ValueAt(r));
  }
  return d;
}

Domain Domain::FromValues(const std::vector<Value>& values) {
  Domain d;
  for (const Value& v : values) d.Add(v);
  return d;
}

Domain Domain::FromValueCounts(const std::vector<Value>& values,
                               const std::vector<size_t>& counts) {
  Domain d;
  for (size_t i = 0; i < values.size() && i < counts.size(); ++i) {
    d.AddCount(values[i], counts[i]);
  }
  return d;
}

Result<size_t> Domain::IndexOf(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) {
    return Status::NotFound("value '" + v.ToString() + "' not in domain");
  }
  return it->second;
}

void Domain::Add(const Value& v) { AddCount(v, 1); }

void Domain::AddCount(const Value& v, size_t count) {
  if (count == 0) return;
  total_ += count;
  auto [it, inserted] = index_.emplace(v, values_.size());
  if (inserted) {
    values_.push_back(v);
    freqs_.push_back(count);
  } else {
    freqs_[it->second] += count;
  }
}

}  // namespace privateclean
