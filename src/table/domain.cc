#include "table/domain.h"

namespace privateclean {

Result<Domain> Domain::FromColumn(const Table& table,
                                  const std::string& field,
                                  bool include_null) {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(field));
  Domain d;
  for (size_t r = 0; r < col->size(); ++r) {
    if (col->IsNull(r) && !include_null) continue;
    d.Add(col->ValueAt(r));
  }
  return d;
}

Domain Domain::FromValues(const std::vector<Value>& values) {
  Domain d;
  for (const Value& v : values) d.Add(v);
  return d;
}

Result<size_t> Domain::IndexOf(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) {
    return Status::NotFound("value '" + v.ToString() + "' not in domain");
  }
  return it->second;
}

void Domain::Add(const Value& v) {
  ++total_;
  auto [it, inserted] = index_.emplace(v, values_.size());
  if (inserted) {
    values_.push_back(v);
    freqs_.push_back(1);
  } else {
    ++freqs_[it->second];
  }
}

}  // namespace privateclean
