#include "table/domain.h"

namespace privateclean {

Result<Domain> Domain::FromColumn(const Table& table,
                                  const std::string& field,
                                  bool include_null) {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(field));
  Domain d;
  for (size_t r = 0; r < col->size(); ++r) {
    if (col->IsNull(r) && !include_null) continue;
    d.Add(col->ValueAt(r));
  }
  return d;
}

Domain Domain::FromValues(const std::vector<Value>& values) {
  Domain d;
  for (const Value& v : values) d.Add(v);
  return d;
}

Domain Domain::FromValueCounts(const std::vector<Value>& values,
                               const std::vector<size_t>& counts) {
  Domain d;
  for (size_t i = 0; i < values.size() && i < counts.size(); ++i) {
    d.AddCount(values[i], counts[i]);
  }
  return d;
}

Result<size_t> Domain::IndexOf(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) {
    return Status::NotFound("value '" + v.ToString() + "' not in domain");
  }
  return it->second;
}

void Domain::Add(const Value& v) { AddCount(v, 1); }

void Domain::AddCount(const Value& v, size_t count) {
  if (count == 0) return;
  total_ += count;
  auto [it, inserted] = index_.emplace(v, values_.size());
  if (inserted) {
    values_.push_back(v);
    freqs_.push_back(count);
  } else {
    freqs_[it->second] += count;
  }
}

}  // namespace privateclean
