#ifndef PRIVATECLEAN_TABLE_DOMAIN_H_
#define PRIVATECLEAN_TABLE_DOMAIN_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// The active domain of a discrete attribute: its distinct values with
/// frequencies, in first-appearance order.
///
/// This is the paper's `Domain(d_i)` — the set randomized response draws
/// replacements from (Section 4.2.1) and the node set of the provenance
/// graph (Section 6.2). Null is a first-class domain member when present,
/// since cleaners may merge spurious values *to* null (IntelWireless
/// experiment).
class Domain {
 public:
  /// Computes the domain of `field` in `table`. `include_null` controls
  /// whether null entries contribute a domain member.
  static Result<Domain> FromColumn(const Table& table,
                                   const std::string& field,
                                   bool include_null = true);

  /// Computes a domain from an explicit list of values (deduplicated,
  /// frequencies counted).
  static Domain FromValues(const std::vector<Value>& values);

  /// Builds a domain from parallel (value, occurrence count) lists —
  /// used by sharded consumers that pre-aggregate per shard and merge in
  /// shard index order, so the first-appearance order and frequencies
  /// match what FromValues would compute over the full value stream.
  /// Repeated values accumulate their counts.
  static Domain FromValueCounts(const std::vector<Value>& values,
                                const std::vector<size_t>& counts);

  /// Number of distinct values (paper's N).
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Distinct values in first-appearance order.
  const std::vector<Value>& values() const { return values_; }

  /// i-th distinct value.
  const Value& value(size_t i) const { return values_[i]; }

  /// Occurrence count of the i-th distinct value.
  size_t frequency(size_t i) const { return freqs_[i]; }

  /// Total number of (counted) rows.
  size_t total_count() const { return total_; }

  /// Index of `v` in the domain, or NotFound.
  Result<size_t> IndexOf(const Value& v) const;

  bool Contains(const Value& v) const { return index_.count(v) > 0; }

 private:
  void Add(const Value& v);
  void AddCount(const Value& v, size_t count);

  std::vector<Value> values_;
  std::vector<size_t> freqs_;
  std::unordered_map<Value, size_t, ValueHash> index_;
  size_t total_ = 0;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_DOMAIN_H_
