#ifndef PRIVATECLEAN_TABLE_DICTIONARY_H_
#define PRIVATECLEAN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/result.h"

namespace privateclean {

/// Sentinel code stored in a string column's code array for null rows.
/// Kept in sync with the validity vector by every Column mutator.
inline constexpr uint32_t kNullCode = UINT32_MAX;

/// Per-column distinct-string table: maps each distinct string to a dense
/// `uint32_t` code in first-intern order. String bytes live in an arena
/// (site "table/dictionary"), so the `string_view`s handed out by At()
/// are stable for the dictionary's lifetime and the index can key on
/// views of the arena bytes instead of owning copies.
///
/// Thread-safety: Intern() is single-writer (it appends to the arena and
/// the index). Concurrent readers of At()/Find() against a dictionary
/// that is not being mutated are safe — which is the contract the
/// sharded kernels rely on: every domain value is interned *before* the
/// parallel section, and shards then write plain integer codes.
class StringDictionary {
 public:
  StringDictionary();

  StringDictionary(const StringDictionary& other);
  StringDictionary& operator=(const StringDictionary& other);
  StringDictionary(StringDictionary&&) noexcept = default;
  StringDictionary& operator=(StringDictionary&&) noexcept = default;

  /// Code for `s`, interning it if new. Codes are dense and assigned in
  /// first-intern order.
  uint32_t Intern(std::string_view s);

  /// Code for `s` if already interned, else kNullCode.
  uint32_t Find(std::string_view s) const;

  /// The string for a code previously returned by Intern (unchecked).
  std::string_view At(uint32_t code) const { return values_[code]; }

  /// Number of distinct strings.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// All distinct strings in code order.
  const std::vector<std::string_view>& values() const { return values_; }

  /// Bytes of string payload held in the arena.
  size_t arena_bytes() const { return arena_.bytes_used(); }
  /// Allocation calls the arena has served (one per distinct string).
  size_t arena_alloc_count() const { return arena_.alloc_count(); }

 private:
  Arena arena_;
  std::vector<std::string_view> values_;  // code -> arena bytes
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_DICTIONARY_H_
