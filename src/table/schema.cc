#include "table/schema.h"

namespace privateclean {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kNumerical:
      return "numerical";
    case AttributeKind::kDiscrete:
      return "discrete";
  }
  return "unknown";
}

Field Field::Numerical(std::string name, ValueType type) {
  return Field{std::move(name), type, AttributeKind::kNumerical};
}

Field Field::Discrete(std::string name, ValueType type) {
  return Field{std::move(name), type, AttributeKind::kDiscrete};
}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  Schema schema;
  for (size_t i = 0; i < fields.size(); ++i) {
    const Field& f = fields[i];
    if (f.name.empty()) {
      return Status::InvalidArgument("field name must be non-empty");
    }
    if (f.type == ValueType::kNull) {
      return Status::InvalidArgument("field '" + f.name +
                                     "' cannot have null type");
    }
    if (f.kind == AttributeKind::kNumerical &&
        f.type == ValueType::kString) {
      return Status::InvalidArgument(
          "numerical field '" + f.name + "' must be int64 or double");
    }
    auto [it, inserted] = schema.index_.emplace(f.name, i);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate field name '" + f.name + "'");
    }
  }
  schema.fields_ = std::move(fields);
  return schema;
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no field named '" + name + "'");
  }
  return it->second;
}

Result<Field> Schema::FieldByName(const std::string& name) const {
  PCLEAN_ASSIGN_OR_RETURN(size_t i, FieldIndex(name));
  return fields_[i];
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) > 0;
}

std::vector<size_t> Schema::DiscreteIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].kind == AttributeKind::kDiscrete) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::NumericalIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].kind == AttributeKind::kNumerical) out.push_back(i);
  }
  return out;
}

Result<Schema> Schema::AddField(const Field& field) const {
  std::vector<Field> fields = fields_;
  fields.push_back(field);
  return Make(std::move(fields));
}

}  // namespace privateclean
