#include "table/table_builder.h"

namespace privateclean {

TableBuilder::TableBuilder(Schema schema)
    : schema_(std::move(schema)), table_(Table::MakeEmpty(schema_)) {}

TableBuilder& TableBuilder::Row(std::vector<Value> values) {
  ++num_rows_;
  if (!first_error_.ok() || !table_.ok()) return *this;
  Status st = table_.ValueOrDie().AppendRow(values);
  if (!st.ok()) first_error_ = std::move(st);
  return *this;
}

TableBuilder& TableBuilder::Reserve(size_t n) {
  if (table_.ok()) {
    Table& t = table_.ValueOrDie();
    for (size_t c = 0; c < t.num_columns(); ++c) {
      t.mutable_column(c)->Reserve(n);
    }
  }
  return *this;
}

Result<Table> TableBuilder::Finish() {
  if (!table_.ok()) return table_.status();
  if (!first_error_.ok()) return first_error_;
  return std::move(table_);
}

}  // namespace privateclean
