#ifndef PRIVATECLEAN_TABLE_COLUMN_H_
#define PRIVATECLEAN_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "table/dictionary.h"
#include "table/value.h"

namespace privateclean {

/// Memory footprint of one column, split by storage class so callers can
/// attribute bytes to the dictionary versus the dense arrays.
struct ColumnMemory {
  size_t payload_bytes = 0;     ///< Typed vectors + validity (capacities).
  size_t dictionary_bytes = 0;  ///< Arena bytes of the string dictionary.
  size_t dictionary_entries = 0;
};

/// Typed column with a validity vector.
///
/// Storage is unboxed and columnar: `vector<int64_t>` / `vector<double>`
/// for numeric columns, and for string columns a per-column
/// StringDictionary plus a dense `vector<uint32_t>` code array — every
/// hot path in PrivateClean (GRR, predicate scans, provenance builds)
/// operates over *distinct values*, so rows carry dictionary codes and
/// the string bytes are stored once. `Value` boxing happens only at API
/// edges. Null entries keep a placeholder in the typed vector (0 / 0.0 /
/// kNullCode) and are flagged invalid; for string columns the code array
/// and validity vector are kept in lockstep (codes_[r] == kNullCode iff
/// valid_[r] == 0).
class Column {
 public:
  /// Creates an empty column of the given physical type (not kNull).
  static Result<Column> Make(ValueType type);

  ValueType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  bool empty() const { return valid_.empty(); }

  /// Number of null entries.
  size_t null_count() const { return null_count_; }

  /// --- Appends -------------------------------------------------------

  void AppendNull();
  /// Typed appends; calling the mismatched one is a programming error
  /// (checked via PCLEAN_CHECK).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  /// Boxed append with type checking; null is accepted for any column type.
  Status AppendValue(const Value& v);

  /// --- Element access --------------------------------------------------

  bool IsNull(size_t row) const { return valid_[row] == 0; }
  /// Unchecked typed getters (row must be valid and type must match).
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  std::string_view StringAt(size_t row) const {
    return dict_.At(codes_[row]);
  }
  /// Dictionary code of a row of a string column; kNullCode for null rows.
  uint32_t CodeAt(size_t row) const { return codes_[row]; }
  /// Numeric view of an int64/double entry; 0 for null.
  double NumericAt(size_t row) const;
  /// Boxed getter; returns Value::Null() for null entries.
  Value ValueAt(size_t row) const;

  /// --- Mutation (used by privacy mechanisms and cleaners) --------------

  /// Overwrites row with a boxed value (type-checked; null allowed).
  Status SetValue(size_t row, const Value& v);

  /// --- Dictionary access (string columns only) -------------------------

  /// The column's distinct-value table. Codes index into it.
  const StringDictionary& dictionary() const { return dict_; }

  /// Interns `v` into the dictionary (without appending a row) and
  /// returns its code. Single-writer: must not race with readers of the
  /// dictionary. This is how callers pre-intern a randomization domain
  /// before a sharded pass so the parallel kernels write plain codes.
  uint32_t InternString(std::string_view v);

  /// Replaces the dictionary with `entries` (code order) and remaps the
  /// code array. Every distinct string currently in the column must
  /// appear in `entries` and `entries` must not contain duplicates;
  /// InvalidArgument otherwise. Used by the release reader to restore
  /// the writer's persisted dictionary order.
  Status RebindDictionary(const std::vector<std::string_view>& entries);

  /// --- Raw access for fast scans ---------------------------------------

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  /// Dense dictionary codes of a string column (kNullCode for nulls).
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<uint8_t>& validity() const { return valid_; }

  /// Mutable numeric payload for in-place Laplace noising. Requires a
  /// double column.
  std::vector<double>* mutable_doubles() { return &doubles_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  /// Mutable code array / validity for sharded in-place mutation
  /// (randomized response). Writers touching disjoint row ranges through
  /// these may run concurrently — codes must already be interned — but
  /// they bypass the null bookkeeping: keep codes_[r] == kNullCode in
  /// lockstep with valid_[r] == 0 and call RecomputeNullCount() once all
  /// writers have finished.
  std::vector<uint32_t>* mutable_codes() { return &codes_; }
  std::vector<uint8_t>* mutable_validity() { return &valid_; }

  /// A new column holding the given rows in order (rows must be in
  /// range). String columns share the dictionary wholesale — the codes
  /// are copied as-is, no re-interning — so Filter/Take over a large
  /// relation never touch string bytes.
  Column SelectRows(const std::vector<size_t>& rows) const;

  /// Recounts nulls from the validity vector. Required after any
  /// mutation through mutable_validity().
  void RecomputeNullCount();

  /// Pre-allocates capacity for n rows.
  void Reserve(size_t n);

  /// Storage footprint, split into dense payload and dictionary bytes.
  ColumnMemory MemoryUsage() const;

 private:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  StringDictionary dict_;
  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_COLUMN_H_
