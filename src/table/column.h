#ifndef PRIVATECLEAN_TABLE_COLUMN_H_
#define PRIVATECLEAN_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace privateclean {

/// Typed column with a validity vector.
///
/// Storage is unboxed (`vector<int64_t>` / `vector<double>` /
/// `vector<string>`) so aggregate scans are cache-friendly; `Value` boxing
/// happens only at API edges. Null entries keep a placeholder in the typed
/// vector and are flagged invalid.
class Column {
 public:
  /// Creates an empty column of the given physical type (not kNull).
  static Result<Column> Make(ValueType type);

  ValueType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  bool empty() const { return valid_.empty(); }

  /// Number of null entries.
  size_t null_count() const { return null_count_; }

  /// --- Appends -------------------------------------------------------

  void AppendNull();
  /// Typed appends; calling the mismatched one is a programming error
  /// (checked via PCLEAN_CHECK).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  /// Boxed append with type checking; null is accepted for any column type.
  Status AppendValue(const Value& v);

  /// --- Element access --------------------------------------------------

  bool IsNull(size_t row) const { return valid_[row] == 0; }
  /// Unchecked typed getters (row must be valid and type must match).
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }
  /// Numeric view of an int64/double entry; 0 for null.
  double NumericAt(size_t row) const;
  /// Boxed getter; returns Value::Null() for null entries.
  Value ValueAt(size_t row) const;

  /// --- Mutation (used by privacy mechanisms and cleaners) --------------

  /// Overwrites row with a boxed value (type-checked; null allowed).
  Status SetValue(size_t row, const Value& v);

  /// --- Raw access for fast scans ---------------------------------------

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& validity() const { return valid_; }

  /// Mutable numeric payload for in-place Laplace noising. Requires a
  /// double column.
  std::vector<double>* mutable_doubles() { return &doubles_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  /// Mutable string payload / validity for sharded in-place mutation
  /// (randomized response). Writers touching disjoint row ranges through
  /// these may run concurrently, but they bypass the null bookkeeping:
  /// call RecomputeNullCount() once all writers have finished.
  std::vector<std::string>* mutable_strings() { return &strings_; }
  std::vector<uint8_t>* mutable_validity() { return &valid_; }

  /// Recounts nulls from the validity vector. Required after any
  /// mutation through mutable_validity().
  void RecomputeNullCount();

  /// Pre-allocates capacity for n rows.
  void Reserve(size_t n);

 private:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_COLUMN_H_
