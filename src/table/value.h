#ifndef PRIVATECLEAN_TABLE_VALUE_H_
#define PRIVATECLEAN_TABLE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/result.h"

namespace privateclean {

/// Physical type of a column or boxed value.
enum class ValueType {
  kNull = 0,    ///< Only Value may be null-typed; columns are typed.
  kInt64 = 1,   ///< 64-bit signed integer.
  kDouble = 2,  ///< IEEE double.
  kString = 3,  ///< UTF-8 string.
};

/// Human-readable type name ("null", "int64", "double", "string").
const char* ValueTypeToString(ValueType type);

/// Boxed scalar used at API edges: table builders, CSV parsing, predicate
/// literals, and cleaning UDF inputs/outputs. Columns store unboxed typed
/// vectors internally (see Column); Value is the lingua franca between the
/// user and the engine.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  /// Typed constructors. The int/string constructors are intentionally
  /// implicit so predicate and cleaning literals read naturally
  /// (e.g. `Predicate::Equals("major", "EECS")`).
  Value(int64_t v) : data_(v) {}
  Value(int v) : data_(static_cast<int64_t>(v)) {}
  Value(double v) : data_(v) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(const char* v) : data_(std::string(v)) {}

  /// Named factory for the null value, clearer at call sites than `Value()`.
  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Unchecked accessors; calling the wrong one is a bug (asserts in
  /// debug via std::get).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 and double both convert. A string value is
  /// InvalidArgument and NULL is FailedPrecondition — never a silent
  /// 0.0, which would fold unnoticed into SUM/AVG/VAR aggregates.
  Result<double> ToNumeric() const;

  /// Renders the value for display/CSV. Null renders as the empty string.
  std::string ToString() const;

  /// Structural equality: same type and same payload. Null == Null.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for use in ordered containers: by type index, then payload.
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_TABLE_VALUE_H_
