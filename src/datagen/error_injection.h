#ifndef PRIVATECLEAN_DATAGEN_ERROR_INJECTION_H_
#define PRIVATECLEAN_DATAGEN_ERROR_INJECTION_H_

#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "table/domain.h"
#include "table/table.h"

namespace privateclean {

/// The output of an error injector: a dirty relation, the ground-truth
/// clean relation (what a perfect analyst would produce), and the repair
/// map the experiment's cleaner applies (dirty value → clean value).
/// The experiments privatize `dirty`, clean the private relation with
/// `repair_map` as a FindReplace/Merge, and score estimates against
/// queries on `clean`.
struct InjectionResult {
  Table dirty;
  Table clean;
  std::unordered_map<Value, Value, ValueHash> repair_map;
};

/// Spelling-error injection (the Figure 5 "error rate" workload): for a
/// fraction `error_rate` of the attribute's distinct values, an alternate
/// representation "<value>~err" is introduced and each row holding the
/// value switches to it independently with probability
/// `row_corruption_prob`. Cleaning merges the alternates back — the
/// dirty domain is larger than the clean one, which is what breaks the
/// Direct estimator's implicit selectivity.
Result<InjectionResult> InjectSpellingErrors(const Table& table,
                                             const std::string& attribute,
                                             double error_rate,
                                             double row_corruption_prob,
                                             Rng& rng);

/// Mixed rename/merge injection (the §8.3.2 protocol: distinct values
/// are "mapped to new random distinct values and other distinct
/// values"). A fraction `error_rate` of the distinct values are
/// erroneous; of those, `merge_fraction` are *aliases* of other existing
/// values (cleaning merges them, shrinking the domain — the errors that
/// hurt Direct) and the rest are *renames* (the dirty relation holds a
/// new spelling "<value>~r"; cleaning renames it back, domain size
/// preserved). Figure 5 sweeps error_rate at a fixed mix; Figure 6 fixes
/// the error rate and sweeps merge_fraction.
Result<InjectionResult> InjectMixedErrors(const Table& table,
                                          const std::string& attribute,
                                          double error_rate,
                                          double merge_fraction, Rng& rng);

/// Merge-error injection (the Figure 6 "merge rate" workload): a fraction
/// `merge_rate` of the distinct values are declared aliases of other
/// (randomly chosen) distinct values. The input relation is the dirty
/// one; the ground truth relabels every alias row to its canonical. The
/// analyst's repair merges alias → canonical, shrinking the domain.
Result<InjectionResult> InjectMergeErrors(const Table& table,
                                          const std::string& attribute,
                                          double merge_rate, Rng& rng);

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_ERROR_INJECTION_H_
