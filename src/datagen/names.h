#ifndef PRIVATECLEAN_DATAGEN_NAMES_H_
#define PRIVATECLEAN_DATAGEN_NAMES_H_

#include <string>
#include <vector>

namespace privateclean {

/// Word lists used by the synthetic dataset generators. All functions
/// return stable, deterministic lists (no RNG involved).

/// US city names (100 entries).
const std::vector<std::string>& CityNames();

/// County names (30 entries).
const std::vector<std::string>& CountyNames();

/// US state names (50 entries).
const std::vector<std::string>& StateNames();

/// Country names (24 entries); index 0 is "United States".
const std::vector<std::string>& CountryNames();

/// ISO-like country codes (40 entries); index 0 is "US". The first 16
/// non-US entries are European (see IsEuropeanCountryCode).
const std::vector<std::string>& CountryCodes();

/// True for the European codes in CountryCodes() — the MCAFE experiment's
/// isEurope() UDF.
bool IsEuropeanCountryCode(const std::string& code);

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_NAMES_H_
