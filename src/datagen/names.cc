#include "datagen/names.h"

#include <unordered_set>

namespace privateclean {

const std::vector<std::string>& CityNames() {
  static const std::vector<std::string>* kCities = new std::vector<std::string>{
      "Springfield", "Riverside",  "Franklin",   "Greenville", "Bristol",
      "Clinton",     "Fairview",   "Salem",      "Madison",    "Georgetown",
      "Arlington",   "Ashland",    "Dover",      "Oxford",     "Jackson",
      "Burlington",  "Manchester", "Milton",     "Newport",    "Auburn",
      "Centerville", "Clayton",    "Dayton",     "Lexington",  "Milford",
      "Mount Vernon", "Oakland",   "Winchester", "Cleveland",  "Hudson",
      "Kingston",    "Riverton",   "Lebanon",    "Plymouth",   "Marion",
      "Monroe",      "Lancaster",  "Glendale",   "Brookfield", "Hamilton",
      "Waverly",     "Bedford",    "Camden",     "Chester",    "Dublin",
      "Easton",      "Farmington", "Gilbert",    "Harrison",   "Irving",
      "Jasper",      "Keystone",   "Lakeside",   "Midland",    "Norwood",
      "Ontario",     "Preston",    "Quincy",     "Redmond",    "Sheridan",
      "Troy",        "Union",      "Vernon",     "Weston",     "York",
      "Zanesville",  "Alton",      "Boone",      "Carlisle",   "Decatur",
      "Elgin",       "Fulton",     "Geneva",     "Hanover",    "Ithaca",
      "Juneau",      "Knoxville",  "Laurel",     "Mesa",       "Nashua",
      "Ogden",       "Palmyra",    "Quitman",    "Roswell",    "Sparta",
      "Tiffin",      "Urbana",     "Vienna",     "Warsaw",     "Xenia",
      "Yukon",       "Zion",       "Avondale",   "Berea",      "Corinth",
      "Delphi",      "Elkhart",    "Freeport",   "Granville",  "Holland"};
  return *kCities;
}

const std::vector<std::string>& CountyNames() {
  static const std::vector<std::string>* kCounties =
      new std::vector<std::string>{
          "Adams",     "Brown",    "Clark",     "Douglas",  "Elm",
          "Floyd",     "Grant",    "Hardin",    "Iron",     "Jefferson",
          "Knox",      "Lincoln",  "Mercer",    "Newton",   "Orange",
          "Perry",     "Quitman",  "Randolph",  "Summit",   "Taylor",
          "Union",     "Vance",    "Washington", "Yates",   "Zapata",
          "Ashe",      "Blaine",   "Custer",    "Dawson",   "Eagle"};
  return *kCounties;
}

const std::vector<std::string>& StateNames() {
  static const std::vector<std::string>* kStates = new std::vector<std::string>{
      "Alabama",       "Alaska",        "Arizona",      "Arkansas",
      "California",    "Colorado",      "Connecticut",  "Delaware",
      "Florida",       "Georgia",       "Hawaii",       "Idaho",
      "Illinois",      "Indiana",       "Iowa",         "Kansas",
      "Kentucky",      "Louisiana",     "Maine",        "Maryland",
      "Massachusetts", "Michigan",      "Minnesota",    "Mississippi",
      "Missouri",      "Montana",       "Nebraska",     "Nevada",
      "New Hampshire", "New Jersey",    "New Mexico",   "New York",
      "North Carolina", "North Dakota", "Ohio",         "Oklahoma",
      "Oregon",        "Pennsylvania",  "Rhode Island", "South Carolina",
      "South Dakota",  "Tennessee",     "Texas",        "Utah",
      "Vermont",       "Virginia",      "Washington",   "West Virginia",
      "Wisconsin",     "Wyoming"};
  return *kStates;
}

const std::vector<std::string>& CountryNames() {
  static const std::vector<std::string>* kCountries =
      new std::vector<std::string>{
          "United States", "Canada",      "Mexico",      "Brazil",
          "United Kingdom", "France",     "Germany",     "Spain",
          "Italy",         "Netherlands", "Sweden",      "Norway",
          "Poland",        "Portugal",    "Ireland",     "Switzerland",
          "Austria",       "Belgium",     "Japan",       "China",
          "India",         "Australia",   "South Korea", "Argentina"};
  return *kCountries;
}

const std::vector<std::string>& CountryCodes() {
  // Index 0 is US. The next ranks are the large non-European cohorts
  // (Canada, China, India, ...); the 16 European codes sit deeper in the
  // tail, so European students are individually rare while their codes
  // make up a large share of the *domain* — the skewed regime the MCAFE
  // experiment (§8.5) aggregates over. 40 codes total.
  static const std::vector<std::string>* kCodes = new std::vector<std::string>{
      "US", "CA", "CN", "IN", "MX", "KR", "JP", "BR", "AU", "GB",
      "TR", "FR", "SA", "DE", "NG", "ES", "IL", "IT", "TH", "NL",
      "VN", "SE", "SG", "NO", "MY", "PL", "AR", "PT", "CL", "IE",
      "NZ", "CH", "ZA", "AT", "EG", "BE", "KE", "DK", "AE", "FI"};
  return *kCodes;
}

bool IsEuropeanCountryCode(const std::string& code) {
  static const std::unordered_set<std::string>* kEurope =
      new std::unordered_set<std::string>{
          "GB", "FR", "DE", "ES", "IT", "NL", "SE", "NO",
          "PL", "PT", "IE", "CH", "AT", "BE", "DK", "FI"};
  return kEurope->count(code) > 0;
}

}  // namespace privateclean
