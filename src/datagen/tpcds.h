#ifndef PRIVATECLEAN_DATAGEN_TPCDS_H_
#define PRIVATECLEAN_DATAGEN_TPCDS_H_

#include "cleaning/constraints.h"
#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// Generator for a TPC-DS-like customer_address projection
/// (ca_city, ca_county, ca_state, ca_country) with the two data-quality
/// constraints the paper uses (§8.3.4):
///
///   FD: (ca_city, ca_county) → ca_state
///   MD: ca_country ≈ ca_country under edit distance
///
/// The generated table satisfies both constraints; the corruption
/// injectors below break them exactly the way the paper describes.
struct TpcdsOptions {
  size_t num_rows = 2000;
  size_t num_cities = 40;
  size_t num_counties = 15;
  double zipf_skew = 1.2;  ///< Row distribution over (city, county) pairs.
};

Result<Table> GenerateCustomerAddress(const TpcdsOptions& options, Rng& rng);

/// Randomly replaces `num_corruptions` rows' ca_state with a different
/// state (violating the FD). Mutates `table`.
Status CorruptStates(Table* table, size_t num_corruptions, Rng& rng);

/// Appends one random character to `num_corruptions` rows' ca_country
/// (the paper's "one-character corruptions", fixable by the MD).
Status CorruptCountries(Table* table, size_t num_corruptions, Rng& rng);

/// The two constraints, ready for FdRepair / MdRepair.
FunctionalDependency CustomerAddressFd();
MatchingDependency CustomerAddressMd();

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_TPCDS_H_
