#include "datagen/mcafe.h"

#include <algorithm>

#include "datagen/names.h"
#include "table/table_builder.h"

namespace privateclean {

Result<Table> GenerateMcafe(const McafeOptions& options, Rng& rng) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be > 0");
  }
  if (options.num_countries == 0) {
    return Status::InvalidArgument("num_countries must be > 0");
  }
  if (!(options.missing_rate >= 0.0 && options.missing_rate <= 1.0)) {
    return Status::InvalidArgument("missing_rate must be in [0, 1]");
  }

  // Country list: the base codes (US first, Europe early) extended with
  // synthetic codes to reach the requested distinct count.
  std::vector<std::string> countries = CountryCodes();
  for (size_t k = countries.size(); k < options.num_countries; ++k) {
    countries.push_back("X" + std::to_string(k));
  }
  countries.resize(options.num_countries);

  PCLEAN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field::Discrete("country", ValueType::kString),
                    Field::Numerical("enthusiasm", ValueType::kDouble)}));

  // US with probability us_share; otherwise a low-skew Zipf over the
  // remaining codes, so the tail stays long (many near-singleton
  // countries, as in the real data).
  ZipfianSampler tail_sampler(
      countries.size() > 1 ? countries.size() - 1 : 1, options.zipf_skew);
  TableBuilder builder(schema);
  builder.Reserve(options.num_rows);
  for (size_t r = 0; r < options.num_rows; ++r) {
    Value country;
    if (!rng.Bernoulli(options.missing_rate)) {
      if (countries.size() == 1 || rng.Bernoulli(options.us_share)) {
        country = Value(countries[0]);
      } else {
        country = Value(countries[1 + tail_sampler.Sample(rng)]);
      }
    }
    // Enthusiasm 1-10; international students score slightly differently
    // so the predicate and aggregate are mildly correlated, as real
    // evaluations would be.
    double base = country.is_null() ? 6.0
                  : country.AsString() == "US"
                      ? 7.0
                      : (McafeIsEurope(country) ? 6.2 : 6.6);
    double enthusiasm =
        std::clamp(base + rng.Gaussian(0.0, 1.8), 1.0, 10.0);
    builder.Row({country, Value(enthusiasm)});
  }
  return builder.Finish();
}

bool McafeIsEurope(const Value& country) {
  if (country.is_null() || country.type() != ValueType::kString) {
    return false;
  }
  return IsEuropeanCountryCode(country.AsString());
}

}  // namespace privateclean
