#ifndef PRIVATECLEAN_DATAGEN_MCAFE_H_
#define PRIVATECLEAN_DATAGEN_MCAFE_H_

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// Simulator for the MCAFE course-evaluation workload (paper §8.5).
///
/// The real dataset is 406 M-CAFE evaluations with a numerical
/// "enthusiasm" score (1–10) and a student country code, where the
/// distinct fraction is high (~21%) and the distribution is dominated by
/// the United States. We do not have the M-CAFE data, so this generator
/// reproduces that structure: 406 rows, a Zipf-skewed country marginal
/// over ~85 codes (US first), European countries present in the tail,
/// and a few missing country codes. This is the paper's "hard" regime —
/// high N/S — where estimates carry larger error.
struct McafeOptions {
  size_t num_rows = 406;
  /// Target number of distinct country codes (capped by the code list;
  /// codes beyond the base list get synthetic "X<k>" codes so the
  /// distinct fraction can reach the paper's ~21%).
  size_t num_countries = 85;
  /// Probability a student is from the US (the dominant head).
  double us_share = 0.5;
  /// Zipf skew of the non-US tail; low skew keeps the tail long, so the
  /// distinct fraction reaches the paper's ~21%.
  double zipf_skew = 0.6;
  double missing_rate = 0.02;
};

/// Generated MCAFE-like relation: country (discrete string, nullable),
/// enthusiasm (numerical double, 1–10). The relation is its own ground
/// truth — the experiment's "cleaning" is the semantic isEurope()
/// aggregation, not error repair.
Result<Table> GenerateMcafe(const McafeOptions& options, Rng& rng);

/// The isEurope() UDF from §8.5: true for European country codes
/// (false for null, non-European, and synthetic codes).
bool McafeIsEurope(const Value& country);

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_MCAFE_H_
