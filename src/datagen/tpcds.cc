#include "datagen/tpcds.h"

#include "datagen/names.h"
#include "table/table_builder.h"

namespace privateclean {

Result<Table> GenerateCustomerAddress(const TpcdsOptions& options,
                                      Rng& rng) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be > 0");
  }
  size_t num_cities = std::min(options.num_cities, CityNames().size());
  size_t num_counties = std::min(options.num_counties, CountyNames().size());
  if (num_cities == 0 || num_counties == 0) {
    return Status::InvalidArgument("need at least one city and county");
  }

  PCLEAN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field::Discrete("ca_city", ValueType::kString),
                    Field::Discrete("ca_county", ValueType::kString),
                    Field::Discrete("ca_state", ValueType::kString),
                    Field::Discrete("ca_country", ValueType::kString)}));

  // Deterministically assign a state per (city, county) pair so the FD
  // holds by construction.
  const auto& states = StateNames();
  auto state_for = [&](size_t city, size_t county) -> const std::string& {
    size_t mixed = city * 1315423911u + county * 2654435761u;
    return states[mixed % states.size()];
  };

  // Row distribution: Zipf over (city, county) pairs; country Zipf over
  // the country list (US-heavy).
  ZipfianSampler pair_sampler(num_cities * num_counties, options.zipf_skew);
  ZipfianSampler country_sampler(CountryNames().size(), 2.0);

  TableBuilder builder(schema);
  builder.Reserve(options.num_rows);
  for (size_t r = 0; r < options.num_rows; ++r) {
    size_t pair = pair_sampler.Sample(rng);
    size_t city = pair % num_cities;
    size_t county = pair / num_cities;
    builder.Row({Value(CityNames()[city]), Value(CountyNames()[county]),
                 Value(state_for(city, county)),
                 Value(CountryNames()[country_sampler.Sample(rng)])});
  }
  return builder.Finish();
}

Status CorruptStates(Table* table, size_t num_corruptions, Rng& rng) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName("ca_state"));
  const auto& states = StateNames();
  for (size_t i = 0; i < num_corruptions; ++i) {
    size_t row = static_cast<size_t>(rng.UniformInt(col->size()));
    // Copy: StringAt views dictionary bytes, and SetValue below may
    // intern (the view would still be stable, but don't rely on it).
    const std::string current(col->StringAt(row));
    // Pick a different state.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::string& replacement =
          states[rng.UniformInt(states.size())];
      if (replacement != current) {
        PCLEAN_RETURN_NOT_OK(col->SetValue(row, Value(replacement)));
        break;
      }
    }
  }
  return Status::OK();
}

Status CorruptCountries(Table* table, size_t num_corruptions, Rng& rng) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName("ca_country"));
  for (size_t i = 0; i < num_corruptions; ++i) {
    size_t row = static_cast<size_t>(rng.UniformInt(col->size()));
    std::string corrupted(col->StringAt(row));
    corrupted.push_back(
        static_cast<char>('a' + rng.UniformInt(26)));  // 1-char append.
    PCLEAN_RETURN_NOT_OK(col->SetValue(row, Value(corrupted)));
  }
  return Status::OK();
}

FunctionalDependency CustomerAddressFd() {
  return FunctionalDependency{{"ca_city", "ca_county"}, "ca_state"};
}

MatchingDependency CustomerAddressMd() {
  return MatchingDependency{"ca_country", 1};
}

}  // namespace privateclean
