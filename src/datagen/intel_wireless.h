#ifndef PRIVATECLEAN_DATAGEN_INTEL_WIRELESS_H_
#define PRIVATECLEAN_DATAGEN_INTEL_WIRELESS_H_

#include <functional>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"
#include "table/value.h"

namespace privateclean {

/// Simulator for the IntelWireless workload (paper §8.4).
///
/// The real dataset is 2.3M sensor-environment observations from 68
/// sensors with occasional failures that drop or garble the sensor id
/// and produce untrustworthy readings. We do not have the Intel Lab
/// trace, so this generator reproduces its *structure*: per-sensor
/// temperature/humidity/light time series, a small discrete domain
/// (68 ids) relative to the dataset size, and failure episodes that emit
/// spurious ids (or nulls) and outlier readings. This is the paper's
/// "preferred regime" for PrivateClean — small N/S.
struct IntelWirelessOptions {
  size_t num_sensors = 68;
  size_t num_rows = 20000;
  /// Probability a row belongs to a failure episode.
  double failure_rate = 0.05;
  /// Among failure rows, probability the id is a spurious garbage token
  /// (vs. missing/null).
  double spurious_id_prob = 0.6;
  /// Number of distinct spurious tokens failures draw from.
  size_t num_spurious_tokens = 8;
};

/// The generated dataset plus its ground truth.
struct IntelWirelessData {
  /// Dirty relation: sensor_id (discrete string, nullable), temp,
  /// humidity, light (numerical doubles).
  Table dirty;
  /// Ground truth after the paper's cleaning: all spurious ids merged to
  /// NULL (failure rows keep their garbage readings — the cleaning model
  /// only touches the discrete attribute).
  Table clean;
  /// Recognizer for spurious id values (never matches real ids or null);
  /// this is the `is_spurious` UDF handed to MergeToNull.
  std::function<bool(const Value&)> is_spurious;
};

Result<IntelWirelessData> GenerateIntelWireless(
    const IntelWirelessOptions& options, Rng& rng);

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_INTEL_WIRELESS_H_
