#include "datagen/intel_wireless.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "cleaning/merge.h"
#include "table/table_builder.h"

namespace privateclean {

Result<IntelWirelessData> GenerateIntelWireless(
    const IntelWirelessOptions& options, Rng& rng) {
  if (options.num_sensors == 0 || options.num_rows == 0) {
    return Status::InvalidArgument("need at least one sensor and one row");
  }
  if (!(options.failure_rate >= 0.0 && options.failure_rate <= 1.0)) {
    return Status::InvalidArgument("failure_rate must be in [0, 1]");
  }

  PCLEAN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field::Discrete("sensor_id", ValueType::kString),
                    Field::Numerical("temp", ValueType::kDouble),
                    Field::Numerical("humidity", ValueType::kDouble),
                    Field::Numerical("light", ValueType::kDouble)}));

  // Per-sensor baselines: each sensor sits in a slightly different spot
  // of the lab, so its readings have a stable offset.
  std::vector<double> temp_base(options.num_sensors);
  std::vector<double> hum_base(options.num_sensors);
  std::vector<double> light_base(options.num_sensors);
  for (size_t sensor = 0; sensor < options.num_sensors; ++sensor) {
    temp_base[sensor] = rng.UniformRealRange(18.0, 26.0);
    hum_base[sensor] = rng.UniformRealRange(30.0, 55.0);
    light_base[sensor] = rng.UniformRealRange(50.0, 600.0);
  }

  // Spurious tokens a failing logger emits instead of its id.
  std::vector<std::string> spurious_tokens;
  for (size_t i = 0; i < std::max<size_t>(options.num_spurious_tokens, 1);
       ++i) {
    spurious_tokens.push_back("ERR_" + std::to_string(1000 + i * 37));
  }
  auto spurious_set = std::make_shared<std::unordered_set<std::string>>(
      spurious_tokens.begin(), spurious_tokens.end());

  // Rows are skewed across sensors (some report much more often).
  ZipfianSampler sensor_sampler(options.num_sensors, 1.1);

  TableBuilder builder(schema);
  builder.Reserve(options.num_rows);
  for (size_t r = 0; r < options.num_rows; ++r) {
    size_t sensor = sensor_sampler.Sample(rng);
    bool failed = rng.Bernoulli(options.failure_rate);
    // Diurnal-ish cycle plus sensor noise.
    double phase =
        2.0 * M_PI * static_cast<double>(r) /
        std::max<double>(1.0, static_cast<double>(options.num_rows) / 16.0);
    double temp = temp_base[sensor] + 2.0 * std::sin(phase) +
                  rng.Gaussian(0.0, 0.4);
    double humidity = hum_base[sensor] - 4.0 * std::sin(phase) +
                      rng.Gaussian(0.0, 1.2);
    double light = std::max(
        0.0, light_base[sensor] * (0.6 + 0.4 * std::sin(phase)) +
                 rng.Gaussian(0.0, 20.0));

    Value id;
    if (failed) {
      // Failure episode: garbage or missing id, untrustworthy readings.
      if (rng.Bernoulli(options.spurious_id_prob)) {
        id = Value(spurious_tokens[rng.UniformInt(spurious_tokens.size())]);
      } else {
        id = Value::Null();
      }
      temp = rng.UniformRealRange(-40.0, 120.0);  // Outlier reading.
      humidity = rng.UniformRealRange(-10.0, 150.0);
      light = rng.UniformRealRange(0.0, 20000.0);
    } else {
      id = Value("s" + std::to_string(sensor + 1));
    }
    builder.Row({id, Value(temp), Value(humidity), Value(light)});
  }
  PCLEAN_ASSIGN_OR_RETURN(Table dirty, builder.Finish());

  IntelWirelessData data{std::move(dirty), Table(), nullptr};
  data.is_spurious = [spurious_set](const Value& v) {
    return !v.is_null() && v.type() == ValueType::kString &&
           spurious_set->count(v.AsString()) > 0;
  };

  // Ground truth: the paper's cleaning applied exactly (spurious -> null).
  data.clean = data.dirty.Clone();
  MergeToNull cleaner("sensor_id", data.is_spurious);
  PCLEAN_RETURN_NOT_OK(cleaner.Apply(&data.clean));
  return data;
}

}  // namespace privateclean
