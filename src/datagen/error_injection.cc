#include "datagen/error_injection.h"

#include "cleaning/merge.h"

namespace privateclean {

namespace {

Status ValidateRate(double rate, const char* what) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<InjectionResult> InjectSpellingErrors(const Table& table,
                                             const std::string& attribute,
                                             double error_rate,
                                             double row_corruption_prob,
                                             Rng& rng) {
  PCLEAN_RETURN_NOT_OK(ValidateRate(error_rate, "error_rate"));
  PCLEAN_RETURN_NOT_OK(
      ValidateRate(row_corruption_prob, "row_corruption_prob"));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(table, attribute, /*include_null=*/false));
  if (domain.empty()) {
    return Status::FailedPrecondition("attribute '" + attribute +
                                      "' has no non-null values");
  }

  // Choose which distinct values receive an alternate spelling.
  size_t num_corrupted = static_cast<size_t>(
      error_rate * static_cast<double>(domain.size()) + 0.5);
  std::vector<size_t> indices(domain.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  indices.resize(num_corrupted);

  InjectionResult out{table.Clone(), table.Clone(), {}};
  std::unordered_map<Value, Value, ValueHash> alternate;  // clean -> dirty
  for (size_t idx : indices) {
    const Value& v = domain.value(idx);
    Value alt(v.ToString() + "~err");
    alternate.emplace(v, alt);
    out.repair_map.emplace(std::move(alt), v);
  }
  if (!alternate.empty() && row_corruption_prob > 0.0) {
    PCLEAN_ASSIGN_OR_RETURN(Column * col,
                            out.dirty.MutableColumnByName(attribute));
    for (size_t r = 0; r < col->size(); ++r) {
      if (col->IsNull(r)) continue;
      auto it = alternate.find(col->ValueAt(r));
      if (it == alternate.end()) continue;
      if (rng.Bernoulli(row_corruption_prob)) {
        PCLEAN_RETURN_NOT_OK(col->SetValue(r, it->second));
      }
    }
  }
  return out;
}

Result<InjectionResult> InjectMixedErrors(const Table& table,
                                          const std::string& attribute,
                                          double error_rate,
                                          double merge_fraction, Rng& rng) {
  PCLEAN_RETURN_NOT_OK(ValidateRate(error_rate, "error_rate"));
  PCLEAN_RETURN_NOT_OK(ValidateRate(merge_fraction, "merge_fraction"));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(table, attribute, /*include_null=*/false));
  if (domain.size() < 2) {
    return Status::FailedPrecondition(
        "mixed injection needs at least 2 distinct values");
  }

  size_t num_errors = static_cast<size_t>(
      error_rate * static_cast<double>(domain.size()) + 0.5);
  num_errors = std::min(num_errors, domain.size() - 1);
  size_t num_merges = static_cast<size_t>(
      merge_fraction * static_cast<double>(num_errors) + 0.5);
  std::vector<size_t> indices(domain.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);

  InjectionResult out{table.Clone(), Table(), {}};
  // Merge-type errors: aliases of values drawn from the error-free
  // remainder (no alias chains). The input relation already contains the
  // alias spellings; cleaning maps them onto their canonicals.
  size_t num_clean_values = domain.size() - num_errors;
  std::unordered_map<Value, Value, ValueHash> renames;  // original -> dirty
  for (size_t i = 0; i < num_errors; ++i) {
    const Value& v = domain.value(indices[i]);
    if (i < num_merges && num_clean_values > 0) {
      const Value& canonical = domain.value(
          indices[num_errors + rng.UniformInt(num_clean_values)]);
      out.repair_map.emplace(v, canonical);
    } else {
      Value dirty(v.ToString() + "~r");
      renames.emplace(v, dirty);
      out.repair_map.emplace(std::move(dirty), v);
    }
  }
  // Apply the renames to the dirty relation (merge-type values stay as
  // they are — their spelling *is* the error).
  if (!renames.empty()) {
    PCLEAN_ASSIGN_OR_RETURN(Column * col,
                            out.dirty.MutableColumnByName(attribute));
    for (size_t r = 0; r < col->size(); ++r) {
      if (col->IsNull(r)) continue;
      auto it = renames.find(col->ValueAt(r));
      if (it == renames.end()) continue;
      PCLEAN_RETURN_NOT_OK(col->SetValue(r, it->second));
    }
  }
  // Ground truth: the repair applied to the dirty relation.
  out.clean = out.dirty.Clone();
  if (!out.repair_map.empty()) {
    FindReplace repair(attribute, out.repair_map);
    PCLEAN_RETURN_NOT_OK(repair.Apply(&out.clean));
  }
  return out;
}

Result<InjectionResult> InjectMergeErrors(const Table& table,
                                          const std::string& attribute,
                                          double merge_rate, Rng& rng) {
  PCLEAN_RETURN_NOT_OK(ValidateRate(merge_rate, "merge_rate"));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(table, attribute, /*include_null=*/false));
  if (domain.size() < 2) {
    return Status::FailedPrecondition(
        "merge injection needs at least 2 distinct values");
  }

  size_t num_aliases = static_cast<size_t>(
      merge_rate * static_cast<double>(domain.size()) + 0.5);
  num_aliases = std::min(num_aliases, domain.size() - 1);
  std::vector<size_t> indices(domain.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);

  // The first num_aliases shuffled values become aliases; canonicals are
  // drawn from the remainder so alias chains cannot form.
  InjectionResult out{table.Clone(), table.Clone(), {}};
  size_t num_canonicals = domain.size() - num_aliases;
  for (size_t i = 0; i < num_aliases; ++i) {
    const Value& alias = domain.value(indices[i]);
    const Value& canonical = domain.value(
        indices[num_aliases + rng.UniformInt(num_canonicals)]);
    out.repair_map.emplace(alias, canonical);
  }
  if (!out.repair_map.empty()) {
    // Ground truth: aliases relabeled to canonicals.
    FindReplace repair(attribute, out.repair_map);
    PCLEAN_RETURN_NOT_OK(repair.Apply(&out.clean));
  }
  return out;
}

}  // namespace privateclean
