#ifndef PRIVATECLEAN_DATAGEN_SYNTHETIC_H_
#define PRIVATECLEAN_DATAGEN_SYNTHETIC_H_

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// Parameters for the paper's synthetic dataset (§8.2, Appendix D
/// Table 1). Defaults match the paper's defaults exactly.
struct SyntheticOptions {
  size_t num_rows = 1000;     ///< S
  size_t num_distinct = 50;   ///< N
  double zipf_skew = 2.0;     ///< z (0 = uniform)
  double numeric_lo = 0.0;    ///< numeric attribute range lower bound
  double numeric_hi = 100.0;  ///< numeric attribute range upper bound
  /// When true, the numeric value's mean tracks the categorical value's
  /// Zipf rank, so the predicate attribute and the aggregate attribute
  /// are correlated — the harder regime §5.5 discusses for sum queries.
  bool correlated = false;
};

/// Generates the synthetic relation:
///   category : discrete string attribute, values "c0".."c<N-1>",
///              drawn Zipf(z) over ranks (rank 0 most frequent);
///   value    : numerical double in [lo, hi], drawn from a Zipf-shaped
///              marginal (both attributes Zipfian, as in §8.2).
Result<Table> GenerateSynthetic(const SyntheticOptions& options, Rng& rng);

/// The categorical value for rank k ("c<k>").
Value SyntheticCategory(size_t rank);

/// A predicate value set of `num_values` categories. `mode` picks which
/// ranks: 0 = the most frequent ranks (high record-selectivity), 1 = the
/// rarest ranks (low record-selectivity, skew-sensitive), 2 = a uniform
/// random subset. The experiment harnesses use mode 2 ("randomly
/// selected query", Appendix D).
std::vector<Value> PickPredicateCategories(size_t num_distinct,
                                           size_t num_values, int mode,
                                           Rng& rng);

}  // namespace privateclean

#endif  // PRIVATECLEAN_DATAGEN_SYNTHETIC_H_
