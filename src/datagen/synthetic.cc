#include "datagen/synthetic.h"

#include <algorithm>

#include "table/table_builder.h"

namespace privateclean {

Value SyntheticCategory(size_t rank) {
  return Value("c" + std::to_string(rank));
}

Result<Table> GenerateSynthetic(const SyntheticOptions& options, Rng& rng) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be > 0");
  }
  if (options.num_distinct == 0) {
    return Status::InvalidArgument("num_distinct must be > 0");
  }
  if (!(options.numeric_hi > options.numeric_lo)) {
    return Status::InvalidArgument("numeric range must be non-degenerate");
  }
  if (options.zipf_skew < 0.0) {
    return Status::InvalidArgument("zipf_skew must be >= 0");
  }

  PCLEAN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field::Discrete("category", ValueType::kString),
                    Field::Numerical("value", ValueType::kDouble)}));

  ZipfianSampler category_sampler(options.num_distinct, options.zipf_skew);
  // The numeric attribute's marginal is Zipf-shaped over 101 buckets
  // spanning [lo, hi] ("both attributes drawn from a Zipfian
  // distribution", §8.2), with within-bucket jitter.
  constexpr size_t kNumericBuckets = 101;
  ZipfianSampler numeric_sampler(kNumericBuckets, options.zipf_skew);

  double span = options.numeric_hi - options.numeric_lo;
  TableBuilder builder(schema);
  builder.Reserve(options.num_rows);
  for (size_t r = 0; r < options.num_rows; ++r) {
    size_t cat_rank = category_sampler.Sample(rng);
    double numeric;
    if (options.correlated) {
      // Mean tracks the category rank (head ranks get the high values,
      // so aggregate sums stay well above the Laplace noise floor);
      // jitter keeps the value continuous.
      double base = options.numeric_hi -
                    span * static_cast<double>(cat_rank) /
                        static_cast<double>(options.num_distinct);
      numeric = std::clamp(base + rng.Gaussian(0.0, span * 0.05),
                           options.numeric_lo, options.numeric_hi);
    } else {
      size_t bucket = numeric_sampler.Sample(rng);
      double base = options.numeric_lo +
                    span * static_cast<double>(bucket) /
                        static_cast<double>(kNumericBuckets - 1);
      numeric = std::clamp(base + rng.UniformRealRange(-span * 0.005,
                                                       span * 0.005),
                           options.numeric_lo, options.numeric_hi);
    }
    builder.Row({SyntheticCategory(cat_rank), Value(numeric)});
  }
  return builder.Finish();
}

std::vector<Value> PickPredicateCategories(size_t num_distinct,
                                           size_t num_values, int mode,
                                           Rng& rng) {
  num_values = std::min(num_values, num_distinct);
  std::vector<size_t> ranks;
  switch (mode) {
    case 0:  // Most frequent.
      for (size_t k = 0; k < num_values; ++k) ranks.push_back(k);
      break;
    case 1:  // Rarest.
      for (size_t k = 0; k < num_values; ++k) {
        ranks.push_back(num_distinct - 1 - k);
      }
      break;
    default: {  // Uniform random subset.
      std::vector<size_t> all(num_distinct);
      for (size_t k = 0; k < num_distinct; ++k) all[k] = k;
      rng.Shuffle(all);
      ranks.assign(all.begin(), all.begin() + num_values);
      break;
    }
  }
  std::vector<Value> values;
  values.reserve(ranks.size());
  for (size_t k : ranks) values.push_back(SyntheticCategory(k));
  return values;
}

}  // namespace privateclean
