#ifndef PRIVATECLEAN_QUERY_VECTORIZED_H_
#define PRIVATECLEAN_QUERY_VECTORIZED_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "query/predicate.h"
#include "table/table.h"

namespace privateclean {

struct SqlExpr;

/// Rows per vectorized batch. Batches are the unit of the predicate→
/// aggregate pipeline: a batch mask lives in a stack buffer (1 KiB), so
/// an aggregate over S rows never materializes an S-byte mask. The size
/// is a constant — never a function of the thread count — so batch
/// boundaries, and therefore every floating-point accumulation order,
/// are identical at any parallelism.
inline constexpr size_t kVectorBatchRows = 1024;

/// A predicate compiled against one table for batch evaluation — the one
/// engine behind Predicate::Evaluate, ExecuteAggregate, ScanWithPredicate
/// and ScanConjunctive.
///
/// Compilation picks a per-column kernel:
///  - string columns: a code-indexed match table over the dictionary
///    (one boxed Matches call per *distinct* value; the row kernel is an
///    integer gather). This covers every predicate form, UDFs included.
///  - numeric columns: typed comparison / membership loops over the raw
///    int64/double arrays with the validity vector; UDFs fall back to a
///    boxed per-row kernel with a per-batch memo.
///  - SqlExpr trees: AND/OR/NOT combine child masks bytewise.
///
/// A CompiledPredicate borrows column storage from the table it was
/// compiled against: the table must outlive it and not be mutated while
/// it is in use. EvalBatch is const and thread-safe — evaluation shards
/// call it concurrently on disjoint row ranges.
class CompiledPredicate {
 public:
  /// Matches every row (an absent WHERE clause).
  static CompiledPredicate True();

  static Result<CompiledPredicate> Compile(const Table& table,
                                           const Predicate& predicate);
  /// Compiles a full WHERE tree (multi-attribute allowed): leaves compile
  /// per-column, AND/OR/NOT combine masks.
  static Result<CompiledPredicate> Compile(const Table& table,
                                           const SqlExpr& expr);

  /// Writes the 0/1 match mask of rows [begin, begin+count) into
  /// mask[0..count). `count` must be <= kVectorBatchRows.
  void EvalBatch(size_t begin, size_t count, uint8_t* mask) const;

  /// Full row mask over `num_rows`, batched through the deterministic
  /// ParallelFor shards; identical at every thread count.
  Result<std::vector<uint8_t>> EvaluateAll(
      size_t num_rows, const ExecutionOptions& exec = {}) const;

 private:
  struct Node;

  CompiledPredicate() = default;
  explicit CompiledPredicate(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  static void EvalNode(const Node& node, size_t begin, size_t count,
                       uint8_t* mask);

  std::shared_ptr<const Node> root_;  ///< nullptr: every row matches.
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_VECTORIZED_H_
