#include "query/sql_expr.h"

#include <algorithm>
#include <memory>

namespace privateclean {

SqlExpr SqlExpr::Leaf(SqlCondition condition) {
  SqlExpr e;
  e.kind = Kind::kCondition;
  e.condition = std::move(condition);
  return e;
}

SqlExpr SqlExpr::Not(SqlExpr child) {
  SqlExpr e;
  e.kind = Kind::kNot;
  e.children.push_back(std::move(child));
  return e;
}

namespace {

SqlExpr MakeNary(SqlExpr::Kind kind, std::vector<SqlExpr> children) {
  if (children.size() == 1) return std::move(children.front());
  SqlExpr e;
  e.kind = kind;
  for (SqlExpr& child : children) {
    if (child.kind == kind) {
      // Splice same-kind children so associativity never shows in the
      // tree shape: (a AND b) AND c == a AND b AND c.
      for (SqlExpr& grandchild : child.children) {
        e.children.push_back(std::move(grandchild));
      }
    } else {
      e.children.push_back(std::move(child));
    }
  }
  return e;
}

}  // namespace

SqlExpr SqlExpr::MakeAnd(std::vector<SqlExpr> children) {
  return MakeNary(Kind::kAnd, std::move(children));
}

SqlExpr SqlExpr::MakeOr(std::vector<SqlExpr> children) {
  return MakeNary(Kind::kOr, std::move(children));
}

bool SqlConditionMatches(const SqlCondition& cond, const Value& v) {
  switch (cond.kind) {
    case SqlCondition::Kind::kCompare:
      return ComparesTrue(cond.op, v, cond.literals.front());
    case SqlCondition::Kind::kIn:
      return std::any_of(cond.literals.begin(), cond.literals.end(),
                         [&](const Value& lit) { return v == lit; });
    case SqlCondition::Kind::kIsNull:
      return cond.is_not_null ? !v.is_null() : v.is_null();
  }
  return false;
}

bool SqlExprMatches(const SqlExpr& expr, const Value& v) {
  switch (expr.kind) {
    case SqlExpr::Kind::kCondition:
      return SqlConditionMatches(expr.condition, v);
    case SqlExpr::Kind::kNot:
      return !SqlExprMatches(expr.children.front(), v);
    case SqlExpr::Kind::kAnd:
      return std::all_of(expr.children.begin(), expr.children.end(),
                         [&](const SqlExpr& c) { return SqlExprMatches(c, v); });
    case SqlExpr::Kind::kOr:
      return std::any_of(expr.children.begin(), expr.children.end(),
                         [&](const SqlExpr& c) { return SqlExprMatches(c, v); });
  }
  return false;
}

namespace {

void CollectAttributes(const SqlExpr& expr, std::vector<std::string>* out) {
  if (expr.kind == SqlExpr::Kind::kCondition) {
    const std::string& attr = expr.condition.attribute;
    if (std::find(out->begin(), out->end(), attr) == out->end()) {
      out->push_back(attr);
    }
    return;
  }
  for (const SqlExpr& child : expr.children) CollectAttributes(child, out);
}

}  // namespace

std::vector<std::string> SqlExprAttributes(const SqlExpr& expr) {
  std::vector<std::string> out;
  CollectAttributes(expr, &out);
  return out;
}

Predicate SqlConditionToPredicate(const SqlCondition& cond) {
  switch (cond.kind) {
    case SqlCondition::Kind::kCompare:
      return Predicate::Compare(cond.attribute, cond.op, cond.literals.front());
    case SqlCondition::Kind::kIn:
      return Predicate::In(cond.attribute, cond.literals);
    case SqlCondition::Kind::kIsNull:
      return cond.is_not_null ? Predicate::IsNotNull(cond.attribute)
                              : Predicate::IsNull(cond.attribute);
  }
  return Predicate::Udf(cond.attribute, [](const Value&) { return false; });
}

Result<Predicate> CollapseSingleAttribute(const SqlExpr& expr) {
  std::vector<std::string> attrs = SqlExprAttributes(expr);
  if (attrs.size() != 1) {
    return Status::InvalidArgument(
        "cannot collapse a WHERE tree referencing " +
        std::to_string(attrs.size()) + " attributes to one predicate");
  }
  if (expr.kind == SqlExpr::Kind::kCondition) {
    return SqlConditionToPredicate(expr.condition);
  }
  if (expr.kind == SqlExpr::Kind::kNot &&
      expr.children.front().kind == SqlExpr::Kind::kCondition) {
    return SqlConditionToPredicate(expr.children.front().condition).Negate();
  }
  auto tree = std::make_shared<const SqlExpr>(expr);
  return Predicate::Udf(attrs.front(), [tree](const Value& v) {
    return SqlExprMatches(*tree, v);
  });
}

}  // namespace privateclean
