#include "query/vectorized.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>

#include "query/sql_expr.h"

namespace privateclean {

struct CompiledPredicate::Node {
  enum class Kind {
    kConst,         ///< Every row matches (or none).
    kStringLookup,  ///< Code-indexed match table over the dictionary.
    kIntCompare,    ///< Typed ordering compare over int64 data.
    kDoubleCompare, ///< Typed ordering compare over double data.
    kIntIn,         ///< Typed membership over int64 data.
    kDoubleIn,      ///< Typed membership over double data.
    kBoxed,         ///< Per-row boxed Matches with a per-batch memo.
    kNot,
    kAnd,
    kOr,
  };

  Kind kind = Kind::kConst;
  bool const_value = false;
  /// Complement the kernel's raw result (folds Predicate::negated() for
  /// the typed numeric kernels; NULL rows fail the raw kernel, so under
  /// negation they match — same two-valued logic as the boxed path).
  bool negate = false;

  // kStringLookup.
  const uint32_t* codes = nullptr;
  uint32_t null_slot = 0;
  std::vector<uint8_t> match;

  // Typed numeric kernels.
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint8_t* validity = nullptr;
  CompareOp op = CompareOp::kLt;
  int64_t int_bound = 0;
  double double_bound = 0.0;
  /// Int column compared against a non-integer-typed (double) bound:
  /// promote each element, matching ComparesTrue.
  bool promote_ints = false;
  std::vector<int64_t> int_set;
  std::vector<double> double_set;
  bool null_matches = false;

  // kBoxed.
  const Column* column = nullptr;
  std::optional<Predicate> boxed;

  std::vector<std::shared_ptr<const Node>> children;
};

namespace {

template <typename T, typename Cmp>
void CompareLoop(const T* data, const uint8_t* validity, T bound,
                 size_t begin, size_t count, uint8_t* mask, Cmp cmp) {
  for (size_t i = 0; i < count; ++i) {
    size_t r = begin + i;
    mask[i] = (validity[r] != 0 && cmp(data[r], bound)) ? 1 : 0;
  }
}

template <typename T>
void DispatchCompare(const T* data, const uint8_t* validity, T bound,
                     CompareOp op, size_t begin, size_t count,
                     uint8_t* mask) {
  switch (op) {
    case CompareOp::kLt:
      CompareLoop(data, validity, bound, begin, count, mask,
                  [](T a, T b) { return a < b; });
      break;
    case CompareOp::kLe:
      CompareLoop(data, validity, bound, begin, count, mask,
                  [](T a, T b) { return a <= b; });
      break;
    case CompareOp::kGt:
      CompareLoop(data, validity, bound, begin, count, mask,
                  [](T a, T b) { return a > b; });
      break;
    case CompareOp::kGe:
      CompareLoop(data, validity, bound, begin, count, mask,
                  [](T a, T b) { return a >= b; });
      break;
    default:
      // kEq/kNe never reach a compare node (normalized to membership).
      std::memset(mask, 0, count);
      break;
  }
}

template <typename T>
void MembershipLoop(const T* data, const uint8_t* validity,
                    const std::vector<T>& set, bool null_matches,
                    size_t begin, size_t count, uint8_t* mask) {
  for (size_t i = 0; i < count; ++i) {
    size_t r = begin + i;
    if (validity[r] == 0) {
      mask[i] = null_matches ? 1 : 0;
      continue;
    }
    // Literal sets are tiny (a handful of IN values); a linear scan
    // beats hashing.
    uint8_t m = 0;
    for (const T& v : set) {
      if (data[r] == v) {
        m = 1;
        break;
      }
    }
    mask[i] = m;
  }
}

}  // namespace

CompiledPredicate CompiledPredicate::True() { return CompiledPredicate(); }

Result<CompiledPredicate> CompiledPredicate::Compile(
    const Table& table, const Predicate& predicate) {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(predicate.attribute()));
  auto node = std::make_shared<Node>();
  if (col->type() == ValueType::kString) {
    // One boxed call per distinct value; negation is baked into the
    // match table.
    const StringDictionary& dict = col->dictionary();
    node->kind = Node::Kind::kStringLookup;
    node->codes = col->codes().data();
    node->null_slot = static_cast<uint32_t>(dict.size());
    node->match.assign(dict.size() + 1, 0);
    for (uint32_t c = 0; c < dict.size(); ++c) {
      node->match[c] =
          predicate.Matches(Value(std::string(dict.At(c)))) ? 1 : 0;
    }
    node->match[dict.size()] = predicate.Matches(Value::Null()) ? 1 : 0;
    return CompiledPredicate(std::move(node));
  }

  const bool is_int = col->type() == ValueType::kInt64;
  node->validity = col->validity().data();
  node->negate = predicate.negated();
  if (predicate.is_comparison()) {
    const Value& bound = predicate.comparison_bound();
    const ValueType bt = bound.type();
    if (bt != ValueType::kInt64 && bt != ValueType::kDouble) {
      // NULL or string bound: no row of a numeric column has a defined
      // order against it (ComparesTrue is false everywhere).
      node->kind = Node::Kind::kConst;
      node->const_value = predicate.negated();
      node->negate = false;
      return CompiledPredicate(std::move(node));
    }
    node->op = predicate.comparison_op();
    if (is_int) {
      if (bt == ValueType::kInt64) {
        node->kind = Node::Kind::kIntCompare;
        node->ints = col->ints().data();
        node->int_bound = bound.AsInt64();
      } else {
        node->kind = Node::Kind::kIntCompare;
        node->ints = col->ints().data();
        node->promote_ints = true;
        node->double_bound = bound.AsDouble();
      }
    } else {
      node->kind = Node::Kind::kDoubleCompare;
      node->doubles = col->doubles().data();
      node->double_bound = bt == ValueType::kInt64
                               ? static_cast<double>(bound.AsInt64())
                               : bound.AsDouble();
    }
    return CompiledPredicate(std::move(node));
  }
  if (predicate.is_membership()) {
    // Typed structural equality: only literals of the column's own type
    // (plus NULL) can match.
    for (const Value& v : predicate.membership_values()) {
      if (v.is_null()) {
        node->null_matches = true;
      } else if (is_int && v.type() == ValueType::kInt64) {
        node->int_set.push_back(v.AsInt64());
      } else if (!is_int && v.type() == ValueType::kDouble) {
        node->double_set.push_back(v.AsDouble());
      }
    }
    if (is_int) {
      node->kind = Node::Kind::kIntIn;
      node->ints = col->ints().data();
    } else {
      node->kind = Node::Kind::kDoubleIn;
      node->doubles = col->doubles().data();
    }
    return CompiledPredicate(std::move(node));
  }
  // UDF over a numeric column: boxed per-row kernel. Matches() includes
  // the negation, so the node applies none.
  node->kind = Node::Kind::kBoxed;
  node->negate = false;
  node->column = col;
  node->boxed = predicate;
  return CompiledPredicate(std::move(node));
}

Result<CompiledPredicate> CompiledPredicate::Compile(const Table& table,
                                                     const SqlExpr& expr) {
  switch (expr.kind) {
    case SqlExpr::Kind::kCondition:
      return Compile(table, SqlConditionToPredicate(expr.condition));
    case SqlExpr::Kind::kNot: {
      PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate child,
                              Compile(table, expr.children.front()));
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kNot;
      if (child.root_ == nullptr) {
        node->kind = Node::Kind::kConst;
        node->const_value = false;
        return CompiledPredicate(std::move(node));
      }
      node->children.push_back(std::move(child.root_));
      return CompiledPredicate(std::move(node));
    }
    case SqlExpr::Kind::kAnd:
    case SqlExpr::Kind::kOr: {
      auto node = std::make_shared<Node>();
      node->kind = expr.kind == SqlExpr::Kind::kAnd ? Node::Kind::kAnd
                                                    : Node::Kind::kOr;
      for (const SqlExpr& child_expr : expr.children) {
        PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate child,
                                Compile(table, child_expr));
        if (child.root_ == nullptr) {
          auto truth = std::make_shared<Node>();
          truth->kind = Node::Kind::kConst;
          truth->const_value = true;
          node->children.push_back(std::move(truth));
        } else {
          node->children.push_back(std::move(child.root_));
        }
      }
      return CompiledPredicate(std::move(node));
    }
  }
  return Status::Internal("unhandled SqlExpr kind");
}

void CompiledPredicate::EvalNode(const Node& node, size_t begin,
                                 size_t count, uint8_t* mask) {
  switch (node.kind) {
    case Node::Kind::kConst:
      std::memset(mask, node.const_value ? 1 : 0, count);
      break;
    case Node::Kind::kStringLookup: {
      const uint32_t* codes = node.codes;
      const uint8_t* match = node.match.data();
      const uint32_t null_slot = node.null_slot;
      for (size_t i = 0; i < count; ++i) {
        uint32_t c = codes[begin + i];
        mask[i] = match[c == kNullCode ? null_slot : c];
      }
      break;
    }
    case Node::Kind::kIntCompare:
      if (node.promote_ints) {
        const int64_t* data = node.ints;
        const uint8_t* validity = node.validity;
        const double bound = node.double_bound;
        const CompareOp op = node.op;
        for (size_t i = 0; i < count; ++i) {
          size_t r = begin + i;
          if (validity[r] == 0) {
            mask[i] = 0;
            continue;
          }
          double x = static_cast<double>(data[r]);
          bool m = false;
          switch (op) {
            case CompareOp::kLt: m = x < bound; break;
            case CompareOp::kLe: m = x <= bound; break;
            case CompareOp::kGt: m = x > bound; break;
            case CompareOp::kGe: m = x >= bound; break;
            default: break;
          }
          mask[i] = m ? 1 : 0;
        }
      } else {
        DispatchCompare(node.ints, node.validity, node.int_bound, node.op,
                        begin, count, mask);
      }
      break;
    case Node::Kind::kDoubleCompare:
      DispatchCompare(node.doubles, node.validity, node.double_bound,
                      node.op, begin, count, mask);
      break;
    case Node::Kind::kIntIn:
      MembershipLoop(node.ints, node.validity, node.int_set,
                     node.null_matches, begin, count, mask);
      break;
    case Node::Kind::kDoubleIn:
      MembershipLoop(node.doubles, node.validity, node.double_set,
                     node.null_matches, begin, count, mask);
      break;
    case Node::Kind::kBoxed: {
      // Per-batch memo: the predicate is value-deterministic, so repeats
      // within the batch cost one hash lookup.
      std::unordered_map<Value, bool, ValueHash> memo;
      for (size_t i = 0; i < count; ++i) {
        Value v = node.column->ValueAt(begin + i);
        auto it = memo.find(v);
        if (it == memo.end()) {
          bool m = node.boxed->Matches(v);
          it = memo.emplace(std::move(v), m).first;
        }
        mask[i] = it->second ? 1 : 0;
      }
      break;
    }
    case Node::Kind::kNot:
      EvalNode(*node.children.front(), begin, count, mask);
      for (size_t i = 0; i < count; ++i) mask[i] ^= 1;
      break;
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      EvalNode(*node.children.front(), begin, count, mask);
      uint8_t tmp[kVectorBatchRows];
      for (size_t c = 1; c < node.children.size(); ++c) {
        EvalNode(*node.children[c], begin, count, tmp);
        if (node.kind == Node::Kind::kAnd) {
          for (size_t i = 0; i < count; ++i) mask[i] &= tmp[i];
        } else {
          for (size_t i = 0; i < count; ++i) mask[i] |= tmp[i];
        }
      }
      break;
    }
  }
  if (node.negate) {
    for (size_t i = 0; i < count; ++i) mask[i] ^= 1;
  }
}

void CompiledPredicate::EvalBatch(size_t begin, size_t count,
                                  uint8_t* mask) const {
  if (root_ == nullptr) {
    std::memset(mask, 1, count);
    return;
  }
  EvalNode(*root_, begin, count, mask);
}

Result<std::vector<uint8_t>> CompiledPredicate::EvaluateAll(
    size_t num_rows, const ExecutionOptions& exec) const {
  std::vector<uint8_t> out(num_rows);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      num_rows, ShardCountForRows(num_rows), exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t b = begin; b < end; b += kVectorBatchRows) {
          EvalBatch(b, std::min(kVectorBatchRows, end - b), &out[b]);
        }
        return Status::OK();
      }));
  return out;
}

}  // namespace privateclean
