#ifndef PRIVATECLEAN_QUERY_SQL_EXPR_H_
#define PRIVATECLEAN_QUERY_SQL_EXPR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/predicate.h"
#include "table/value.h"

namespace privateclean {

/// One WHERE leaf: a condition on a single attribute.
struct SqlCondition {
  enum class Kind {
    kCompare,  ///< attr <op> literal (=, !=, <, <=, >, >=).
    kIn,       ///< attr IN (literal, ...).
    kIsNull,   ///< attr IS [NOT] NULL.
  };

  std::string attribute;
  Kind kind = Kind::kCompare;
  CompareOp op = CompareOp::kEq;  ///< kCompare only.
  std::vector<Value> literals;    ///< kCompare: exactly one; kIn: one or more.
  bool is_not_null = false;       ///< kIsNull only: IS NOT NULL.
};

/// Boolean WHERE tree over SqlConditions, retained verbatim by ParseSql
/// so queries can be re-rendered and analyzed after parsing. AND/OR
/// nodes are flattened during construction (a child never repeats its
/// parent's kind), so `(a AND b) AND c` and `a AND b AND c` build the
/// same tree.
struct SqlExpr {
  enum class Kind { kCondition, kAnd, kOr, kNot };

  Kind kind = Kind::kCondition;
  SqlCondition condition;         ///< kCondition only.
  std::vector<SqlExpr> children;  ///< kAnd/kOr: two or more; kNot: one.

  static SqlExpr Leaf(SqlCondition condition);
  static SqlExpr Not(SqlExpr child);
  /// Build a conjunction/disjunction, splicing children of the same kind.
  static SqlExpr MakeAnd(std::vector<SqlExpr> children);
  static SqlExpr MakeOr(std::vector<SqlExpr> children);
};

/// Whether `v` satisfies one condition / a whole single-attribute tree.
/// Two-valued logic matching Predicate: NULL satisfies only `= NULL`,
/// `IS NULL`, and the complements (!=, NOT, IS NOT NULL) of conditions it
/// fails; ordering comparisons (<, <=, >, >=) are never satisfied by NULL.
bool SqlConditionMatches(const SqlCondition& cond, const Value& v);
bool SqlExprMatches(const SqlExpr& expr, const Value& v);

/// Distinct attributes referenced by the tree, in first-appearance order.
std::vector<std::string> SqlExprAttributes(const SqlExpr& expr);

/// The equivalent single-attribute Predicate of one leaf condition.
Predicate SqlConditionToPredicate(const SqlCondition& cond);

/// Collapses a tree referencing exactly one attribute to an equivalent
/// Predicate: leaves (and NOT-of-leaf) map to their native Predicate
/// forms; general trees become a Udf over SqlExprMatches. This is what
/// routes every single-attribute WHERE — range predicates included —
/// through the bias-corrected estimators via Predicate::MatchingValues.
/// InvalidArgument if the tree references zero or several attributes.
Result<Predicate> CollapseSingleAttribute(const SqlExpr& expr);

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_SQL_EXPR_H_
