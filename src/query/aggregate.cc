#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/statistics.h"

namespace privateclean {

const char* AggregateTypeToString(AggregateType agg) {
  switch (agg) {
    case AggregateType::kCount:
      return "count";
    case AggregateType::kSum:
      return "sum";
    case AggregateType::kAvg:
      return "avg";
    case AggregateType::kMedian:
      return "median";
    case AggregateType::kPercentile:
      return "percentile";
    case AggregateType::kVar:
      return "var";
    case AggregateType::kStd:
      return "std";
    case AggregateType::kMin:
      return "min";
    case AggregateType::kMax:
      return "max";
  }
  return "unknown";
}

AggregateQuery AggregateQuery::Count(std::optional<Predicate> pred) {
  return AggregateQuery{AggregateType::kCount, "", std::move(pred), 50.0};
}

AggregateQuery AggregateQuery::Sum(std::string attr,
                                   std::optional<Predicate> pred) {
  return AggregateQuery{AggregateType::kSum, std::move(attr),
                        std::move(pred), 50.0};
}

AggregateQuery AggregateQuery::Avg(std::string attr,
                                   std::optional<Predicate> pred) {
  return AggregateQuery{AggregateType::kAvg, std::move(attr),
                        std::move(pred), 50.0};
}

namespace {

Status ValidateNumericAttribute(const Table& table, const std::string& attr) {
  PCLEAN_ASSIGN_OR_RETURN(Field f, table.schema().FieldByName(attr));
  if (f.type == ValueType::kString) {
    return Status::InvalidArgument("aggregate attribute '" + attr +
                                   "' is not numeric");
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Per-shard partial of one ExecuteAggregate pass: everything any of the
/// aggregate kinds needs, merged in shard index order so floating-point
/// results depend only on the shard layout, never the thread count.
struct AggregatePartial {
  size_t count = 0;             ///< Matching rows (count) / non-null (avg).
  size_t masked = 0;            ///< Matching rows including NULLs.
  double sum = 0.0;             ///< Sum of matching non-null values.
  bool has_extreme = false;     ///< min_value/max_value are populated.
  double min_value = 0.0;       ///< For min.
  double max_value = 0.0;       ///< For max.
  RunningMoments moments;       ///< For var/std.
  std::vector<double> values;   ///< For median/percentile (in row order).
};

}  // namespace

Result<double> ExecuteAggregate(const Table& table,
                                const AggregateQuery& query,
                                const ExecutionOptions& exec) {
  CompiledPredicate predicate = CompiledPredicate::True();
  if (query.predicate.has_value()) {
    PCLEAN_ASSIGN_OR_RETURN(
        predicate, CompiledPredicate::Compile(table, *query.predicate));
  }
  return ExecuteAggregate(table, query, predicate, exec);
}

Result<double> ExecuteAggregate(const Table& table,
                                const AggregateQuery& query,
                                const CompiledPredicate& predicate,
                                const ExecutionOptions& exec) {
  const size_t rows = table.num_rows();
  const size_t shards = ShardCountForRows(rows);

  if (query.agg == AggregateType::kCount) {
    std::vector<AggregatePartial> partials(shards);
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          uint8_t mask[kVectorBatchRows];
          size_t n = 0;
          for (size_t b = begin; b < end; b += kVectorBatchRows) {
            const size_t batch = std::min(kVectorBatchRows, end - b);
            predicate.EvalBatch(b, batch, mask);
            for (size_t i = 0; i < batch; ++i) n += mask[i];
          }
          partials[shard].count = n;
          return Status::OK();
        }));
    size_t n = 0;
    for (const AggregatePartial& part : partials) n += part.count;
    return static_cast<double>(n);
  }

  PCLEAN_RETURN_NOT_OK(
      ValidateNumericAttribute(table, query.numeric_attribute));
  PCLEAN_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(query.numeric_attribute));

  const bool needs_values = query.agg == AggregateType::kMedian ||
                            query.agg == AggregateType::kPercentile;
  const bool needs_moments =
      query.agg == AggregateType::kVar || query.agg == AggregateType::kStd;
  const bool needs_extremes =
      query.agg == AggregateType::kMin || query.agg == AggregateType::kMax;
  std::vector<AggregatePartial> partials(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      rows, shards, exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        AggregatePartial& part = partials[shard];
        uint8_t mask[kVectorBatchRows];
        for (size_t b = begin; b < end; b += kVectorBatchRows) {
          const size_t batch = std::min(kVectorBatchRows, end - b);
          predicate.EvalBatch(b, batch, mask);
          // The accumulation below visits matching rows in row order —
          // exactly the pre-vectorization sequence, so sums and value
          // buffers are bit-identical to the row-loop engine.
          for (size_t i = 0; i < batch; ++i) {
            if (!mask[i]) continue;
            const size_t r = b + i;
            part.masked++;
            if (col->IsNull(r)) continue;
            double x = col->NumericAt(r);
            part.sum += x;
            ++part.count;
            if (needs_moments) part.moments.Add(x);
            if (needs_values) part.values.push_back(x);
            if (needs_extremes) {
              if (!part.has_extreme) {
                part.has_extreme = true;
                part.min_value = x;
                part.max_value = x;
              } else {
                if (x < part.min_value) part.min_value = x;
                if (x > part.max_value) part.max_value = x;
              }
            }
          }
        }
        return Status::OK();
      }));

  AggregatePartial merged;
  for (AggregatePartial& part : partials) {
    merged.count += part.count;
    merged.masked += part.masked;
    merged.sum += part.sum;
    if (needs_moments) merged.moments.Merge(part.moments);
    if (needs_extremes && part.has_extreme) {
      if (!merged.has_extreme) {
        merged.has_extreme = true;
        merged.min_value = part.min_value;
        merged.max_value = part.max_value;
      } else {
        if (part.min_value < merged.min_value) {
          merged.min_value = part.min_value;
        }
        if (part.max_value > merged.max_value) {
          merged.max_value = part.max_value;
        }
      }
    }
    if (needs_values) {
      // Concatenating in shard index order reproduces the serial row
      // order exactly.
      merged.values.insert(merged.values.end(), part.values.begin(),
                           part.values.end());
    }
  }

  switch (query.agg) {
    case AggregateType::kSum:
      // An empty selection sums to 0 (conventional); a selection where
      // every value is NULL does not — that 0 would be silently biased.
      if (merged.masked > 0 && merged.count == 0) {
        return Status::FailedPrecondition(
            "sum over '" + query.numeric_attribute + "' matched " +
            std::to_string(merged.masked) +
            " rows but every value is NULL");
      }
      return merged.sum;
    case AggregateType::kAvg: {
      if (merged.count == 0) {
        return Status::FailedPrecondition("avg over zero matching rows");
      }
      return merged.sum / static_cast<double>(merged.count);
    }
    case AggregateType::kVar:
    case AggregateType::kStd: {
      if (merged.moments.count() < 2) {
        return Status::FailedPrecondition(
            "var/std needs at least 2 matching rows");
      }
      double var = merged.moments.SampleVariance();
      return query.agg == AggregateType::kVar ? var : std::sqrt(var);
    }
    case AggregateType::kMedian:
    case AggregateType::kPercentile: {
      if (query.agg == AggregateType::kMedian) {
        return Median(std::move(merged.values));
      }
      return Percentile(std::move(merged.values), query.percentile);
    }
    case AggregateType::kMin:
    case AggregateType::kMax: {
      if (!merged.has_extreme) {
        return Status::FailedPrecondition(
            std::string(AggregateTypeToString(query.agg)) +
            " over zero non-null matching rows");
      }
      return query.agg == AggregateType::kMin ? merged.min_value
                                              : merged.max_value;
    }
    case AggregateType::kCount:
      break;  // Handled above.
  }
  return Status::Internal("unhandled aggregate type");
}

namespace {

/// Per-shard partial of QueryScanStats, merged in shard index order so
/// the floating-point result depends only on the shard layout (a
/// function of the row count), never on the thread count.
struct ScanPartial {
  size_t matching_rows = 0;
  double matching_sum = 0.0;
  double complement_sum = 0.0;
  RunningMoments moments;
};

}  // namespace

Result<QueryScanStats> ScanWithPredicate(const Table& table,
                                         const Predicate& predicate,
                                         const std::string& numeric_attribute,
                                         const ExecutionOptions& exec) {
  // Injection point at scan entry — before the sharded loops, so faults
  // model a query that fails up front (e.g. a paged-out relation), not a
  // partially merged result.
  PCLEAN_FAILPOINT("query.scan.begin", numeric_attribute);
  QueryScanStats stats;
  stats.total_rows = table.num_rows();
  PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                          CompiledPredicate::Compile(table, predicate));

  const Column* numeric = nullptr;
  if (!numeric_attribute.empty()) {
    PCLEAN_RETURN_NOT_OK(ValidateNumericAttribute(table, numeric_attribute));
    PCLEAN_ASSIGN_OR_RETURN(numeric, table.ColumnByName(numeric_attribute));
  }

  const size_t shards = ShardCountForRows(table.num_rows());
  std::vector<ScanPartial> partials(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      table.num_rows(), shards, exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        ScanPartial& part = partials[shard];
        uint8_t mask[kVectorBatchRows];
        for (size_t b = begin; b < end; b += kVectorBatchRows) {
          const size_t batch = std::min(kVectorBatchRows, end - b);
          compiled.EvalBatch(b, batch, mask);
          // Row order within the shard is unchanged from the row-loop
          // engine, so moments and sums accumulate bit-identically.
          for (size_t i = 0; i < batch; ++i) {
            const size_t r = b + i;
            double x = 0.0;
            if (numeric != nullptr && !numeric->IsNull(r)) {
              x = numeric->NumericAt(r);
              part.moments.Add(x);
            }
            if (mask[i]) {
              ++part.matching_rows;
              part.matching_sum += x;
            } else {
              part.complement_sum += x;
            }
          }
        }
        return Status::OK();
      }));

  RunningMoments moments;
  for (const ScanPartial& part : partials) {
    stats.matching_rows += part.matching_rows;
    stats.matching_sum += part.matching_sum;
    stats.complement_sum += part.complement_sum;
    moments.Merge(part.moments);
  }
  stats.numeric_mean = moments.Mean();
  stats.numeric_variance = moments.PopulationVariance();
  return stats;
}

Result<std::map<Value, size_t>> GroupByCount(
    const Table& table, const std::string& group_attribute) {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(group_attribute));
  // Keys are boxed Values: a NULL group is Value::Null(), a distinct
  // bucket from a genuine empty-string group (they collided when keys
  // were stringified).
  std::map<Value, size_t> counts;
  for (size_t r = 0; r < col->size(); ++r) {
    counts[col->ValueAt(r)]++;
  }
  return counts;
}

}  // namespace privateclean
