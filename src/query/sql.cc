#include "query/sql.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace privateclean {

namespace {

enum class TokenKind {
  kIdentifier,  ///< Bare or double-quoted identifier / keyword.
  kString,      ///< Single-quoted string literal.
  kNumber,
  kSymbol,  ///< One of ( ) , = != <> *
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< Identifier/symbol text or decoded literal.
  size_t position;    ///< Byte offset in the input, for error messages.
  bool is_float = false;  ///< For kNumber: contains '.' or exponent.
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        PCLEAN_ASSIGN_OR_RETURN(Token t, LexString(&i));
        tokens.push_back(std::move(t));
      } else if (c == '"') {
        PCLEAN_ASSIGN_OR_RETURN(Token t, LexQuotedIdentifier(&i));
        tokens.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') && i + 1 < input_.size() &&
                  (std::isdigit(static_cast<unsigned char>(input_[i + 1])) ||
                   input_[i + 1] == '.')) ||
                 (c == '.' && i + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        tokens.push_back(LexNumber(&i));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier(&i));
      } else if (c == '!' || c == '<') {
        size_t start = i;
        if (i + 1 < input_.size() &&
            ((c == '!' && input_[i + 1] == '=') ||
             (c == '<' && input_[i + 1] == '>'))) {
          i += 2;
          tokens.push_back(Token{TokenKind::kSymbol, "!=", start});
        } else {
          return Err(start, "unexpected character '" + std::string(1, c) +
                                "'");
        }
      } else if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        tokens.push_back(
            Token{TokenKind::kSymbol, std::string(1, c), i});
        ++i;
      } else {
        return Err(i, "unexpected character '" + std::string(1, c) + "'");
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  Status Err(size_t pos, const std::string& msg) {
    return Status::InvalidArgument("SQL error at position " +
                                   std::to_string(pos) + ": " + msg);
  }

  Result<Token> LexString(size_t* i) {
    size_t start = *i;
    ++*i;  // Opening quote.
    std::string out;
    while (*i < input_.size()) {
      char c = input_[*i];
      if (c == '\'') {
        if (*i + 1 < input_.size() && input_[*i + 1] == '\'') {
          out.push_back('\'');
          *i += 2;
        } else {
          ++*i;
          return Token{TokenKind::kString, std::move(out), start};
        }
      } else {
        out.push_back(c);
        ++*i;
      }
    }
    return Err(start, "unterminated string literal");
  }

  Result<Token> LexQuotedIdentifier(size_t* i) {
    size_t start = *i;
    ++*i;
    std::string out;
    while (*i < input_.size()) {
      char c = input_[*i];
      if (c == '"') {
        if (*i + 1 < input_.size() && input_[*i + 1] == '"') {
          out.push_back('"');
          *i += 2;
        } else {
          ++*i;
          return Token{TokenKind::kIdentifier, std::move(out), start};
        }
      } else {
        out.push_back(c);
        ++*i;
      }
    }
    return Err(start, "unterminated quoted identifier");
  }

  Token LexNumber(size_t* i) {
    size_t start = *i;
    bool is_float = false;
    // A leading '+' is accepted by the grammar but dropped from the
    // token text: the numeric parsers (std::from_chars) reject it, and
    // `+5` must mean the same literal as `5`.
    if (input_[*i] == '+') {
      ++*i;
      start = *i;
    } else if (input_[*i] == '-') {
      ++*i;
    }
    while (*i < input_.size()) {
      char c = input_[*i];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++*i;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++*i;
        if (*i < input_.size() &&
            (input_[*i] == '-' || input_[*i] == '+') &&
            (input_[*i - 1] == 'e' || input_[*i - 1] == 'E')) {
          ++*i;
        }
      } else {
        break;
      }
    }
    Token t{TokenKind::kNumber, input_.substr(start, *i - start), start};
    t.is_float = is_float;
    return t;
  }

  Token LexIdentifier(size_t* i) {
    size_t start = *i;
    while (*i < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[*i])) ||
            input_[*i] == '_')) {
      ++*i;
    }
    return Token{TokenKind::kIdentifier, input_.substr(start, *i - start),
                 start};
  }

  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedSql> Parse() {
    PCLEAN_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    ParsedSql out;
    PCLEAN_RETURN_NOT_OK(ParseAggregate(&out.query));
    PCLEAN_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PCLEAN_ASSIGN_OR_RETURN(out.table_name, ExpectIdentifier("table name"));
    if (TryKeyword("WHERE")) {
      PCLEAN_ASSIGN_OR_RETURN(Predicate first, ParseCondition());
      out.query.predicate = std::move(first);
      if (TryKeyword("AND")) {
        PCLEAN_ASSIGN_OR_RETURN(Predicate second, ParseCondition());
        if (out.query.agg != AggregateType::kCount) {
          return Err(
              "AND conditions are supported for COUNT queries only "
              "(the conjunctive estimator)");
        }
        if (second.attribute() == out.query.predicate->attribute()) {
          return Err(
              "AND conditions must reference two different attributes; "
              "use IN (...) for multiple values of one attribute");
        }
        out.conjunct = std::move(second);
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("SQL error at position " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }

  /// Positioned error for a numeric token the lexer accepted but the
  /// numeric grammar rejects (e.g. '1.2.3', '1e', an out-of-range int).
  Status NumberErr(const Token& num) const {
    return Status::InvalidArgument(
        "SQL error at position " + std::to_string(num.position) +
        ": malformed numeric literal '" + num.text + "'");
  }

  bool TryKeyword(const std::string& upper) {
    if (Peek().kind == TokenKind::kIdentifier &&
        ToLowerAscii(Peek().text) == ToLowerAscii(upper)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& upper) {
    if (!TryKeyword(upper)) {
      return Err("expected " + upper);
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected " + what);
    }
    return Advance().text;
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Err("expected '" + symbol + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseAggregate(AggregateQuery* query) {
    PCLEAN_ASSIGN_OR_RETURN(std::string name,
                            ExpectIdentifier("aggregate function"));
    std::string lower = ToLowerAscii(name);
    if (lower == "count") {
      query->agg = AggregateType::kCount;
    } else if (lower == "sum") {
      query->agg = AggregateType::kSum;
    } else if (lower == "avg") {
      query->agg = AggregateType::kAvg;
    } else if (lower == "median") {
      query->agg = AggregateType::kMedian;
    } else if (lower == "var") {
      query->agg = AggregateType::kVar;
    } else if (lower == "std") {
      query->agg = AggregateType::kStd;
    } else if (lower == "percentile") {
      query->agg = AggregateType::kPercentile;
    } else {
      return Err("unknown aggregate '" + name + "'");
    }
    PCLEAN_RETURN_NOT_OK(ExpectSymbol("("));
    if (query->agg == AggregateType::kCount) {
      // COUNT(1) or COUNT(*).
      if (Peek().kind == TokenKind::kNumber && Peek().text == "1") {
        Advance();
      } else if (Peek().kind == TokenKind::kSymbol && Peek().text == "*") {
        Advance();
      } else {
        return Err("COUNT takes 1 or * (predicates go in WHERE)");
      }
    } else {
      PCLEAN_ASSIGN_OR_RETURN(query->numeric_attribute,
                              ExpectIdentifier("numeric attribute"));
      if (query->agg == AggregateType::kPercentile) {
        // PERCENTILE(attr, p) with p in [0, 100].
        PCLEAN_RETURN_NOT_OK(ExpectSymbol(","));
        if (Peek().kind != TokenKind::kNumber) {
          return Err("PERCENTILE expects a numeric rank, e.g. "
                     "percentile(score, 90)");
        }
        const Token& rank = Advance();
        auto parsed_rank = ParseDouble(rank.text);
        if (!parsed_rank.ok()) return NumberErr(rank);
        query->percentile = parsed_rank.ValueOrDie();
        if (query->percentile < 0.0 || query->percentile > 100.0) {
          return Err("percentile rank must be in [0, 100]");
        }
      }
    }
    return ExpectSymbol(")");
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString: {
        std::string text = Advance().text;
        return Value(std::move(text));
      }
      case TokenKind::kNumber: {
        Token num = Advance();
        if (num.is_float) {
          auto v = ParseDouble(num.text);
          if (!v.ok()) return NumberErr(num);
          return Value(v.ValueOrDie());
        }
        auto v = ParseInt64(num.text);
        if (!v.ok()) return NumberErr(num);
        return Value(v.ValueOrDie());
      }
      case TokenKind::kIdentifier:
        if (ToLowerAscii(t.text) == "null") {
          Advance();
          return Value::Null();
        }
        return Err("expected a literal (strings use single quotes)");
      default:
        return Err("expected a literal");
    }
  }

  Result<Predicate> ParseCondition() {
    PCLEAN_ASSIGN_OR_RETURN(std::string attribute,
                            ExpectIdentifier("attribute"));
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol && t.text == "=") {
      Advance();
      PCLEAN_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      return Predicate::Equals(std::move(attribute), std::move(literal));
    }
    if (t.kind == TokenKind::kSymbol && t.text == "!=") {
      Advance();
      PCLEAN_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      return Predicate::Equals(std::move(attribute), std::move(literal))
          .Negate();
    }
    if (TryKeyword("IN")) {
      PCLEAN_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      for (;;) {
        PCLEAN_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
        values.push_back(std::move(literal));
        if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
          Advance();
          continue;
        }
        break;
      }
      PCLEAN_RETURN_NOT_OK(ExpectSymbol(")"));
      return Predicate::In(std::move(attribute), std::move(values));
    }
    if (TryKeyword("IS")) {
      bool negated = TryKeyword("NOT");
      if (!TryKeyword("NULL")) {
        return Err("expected NULL after IS [NOT]");
      }
      Predicate p = Predicate::IsNull(attribute);
      return negated ? p.Negate() : p;
    }
    return Err("expected =, !=, <>, IN, or IS after attribute '" +
               attribute + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedSql> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  PCLEAN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace privateclean
