#include "query/sql.h"

#include <array>
#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace privateclean {

namespace {

enum class TokenKind {
  kIdentifier,  ///< Bare or double-quoted identifier / keyword.
  kString,      ///< Single-quoted string literal.
  kNumber,
  kSymbol,  ///< One of ( ) , * = != < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< Identifier/symbol text or decoded literal.
  size_t position;    ///< Byte offset in the input, for error messages.
  bool is_float = false;  ///< For kNumber: contains '.' or exponent.
  /// For kIdentifier: came from double quotes. A quoted name is always a
  /// plain identifier — it never matches a keyword or the NULL literal.
  bool quoted = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        PCLEAN_ASSIGN_OR_RETURN(Token t, LexString(&i));
        tokens.push_back(std::move(t));
      } else if (c == '"') {
        PCLEAN_ASSIGN_OR_RETURN(Token t, LexQuotedIdentifier(&i));
        tokens.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') && i + 1 < input_.size() &&
                  (std::isdigit(static_cast<unsigned char>(input_[i + 1])) ||
                   input_[i + 1] == '.')) ||
                 (c == '.' && i + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        tokens.push_back(LexNumber(&i));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier(&i));
      } else if (c == '!') {
        size_t start = i;
        if (i + 1 < input_.size() && input_[i + 1] == '=') {
          i += 2;
          tokens.push_back(Token{TokenKind::kSymbol, "!=", start});
        } else {
          return Err(start, "unexpected character '!'");
        }
      } else if (c == '<') {
        size_t start = i;
        if (i + 1 < input_.size() && input_[i + 1] == '>') {
          i += 2;
          // <> is the alternate not-equals spelling; normalize to !=.
          tokens.push_back(Token{TokenKind::kSymbol, "!=", start});
        } else if (i + 1 < input_.size() && input_[i + 1] == '=') {
          i += 2;
          tokens.push_back(Token{TokenKind::kSymbol, "<=", start});
        } else {
          ++i;
          tokens.push_back(Token{TokenKind::kSymbol, "<", start});
        }
      } else if (c == '>') {
        size_t start = i;
        if (i + 1 < input_.size() && input_[i + 1] == '=') {
          i += 2;
          tokens.push_back(Token{TokenKind::kSymbol, ">=", start});
        } else {
          ++i;
          tokens.push_back(Token{TokenKind::kSymbol, ">", start});
        }
      } else if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        tokens.push_back(
            Token{TokenKind::kSymbol, std::string(1, c), i});
        ++i;
      } else {
        return Err(i, "unexpected character '" + std::string(1, c) + "'");
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  Status Err(size_t pos, const std::string& msg) {
    return Status::InvalidArgument("SQL error at position " +
                                   std::to_string(pos) + ": " + msg);
  }

  Result<Token> LexString(size_t* i) {
    size_t start = *i;
    ++*i;  // Opening quote.
    std::string out;
    while (*i < input_.size()) {
      char c = input_[*i];
      if (c == '\'') {
        if (*i + 1 < input_.size() && input_[*i + 1] == '\'') {
          out.push_back('\'');
          *i += 2;
        } else {
          ++*i;
          return Token{TokenKind::kString, std::move(out), start};
        }
      } else {
        out.push_back(c);
        ++*i;
      }
    }
    return Err(start, "unterminated string literal");
  }

  Result<Token> LexQuotedIdentifier(size_t* i) {
    size_t start = *i;
    ++*i;
    std::string out;
    while (*i < input_.size()) {
      char c = input_[*i];
      if (c == '"') {
        if (*i + 1 < input_.size() && input_[*i + 1] == '"') {
          out.push_back('"');
          *i += 2;
        } else {
          ++*i;
          if (out.empty()) {
            return Err(start, "empty quoted identifier");
          }
          Token t{TokenKind::kIdentifier, std::move(out), start};
          t.quoted = true;
          return t;
        }
      } else {
        out.push_back(c);
        ++*i;
      }
    }
    return Err(start, "unterminated quoted identifier");
  }

  Token LexNumber(size_t* i) {
    size_t start = *i;
    bool is_float = false;
    // A leading '+' is accepted by the grammar but dropped from the
    // token text: the numeric parsers (std::from_chars) reject it, and
    // `+5` must mean the same literal as `5`.
    if (input_[*i] == '+') {
      ++*i;
      start = *i;
    } else if (input_[*i] == '-') {
      ++*i;
    }
    while (*i < input_.size()) {
      char c = input_[*i];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++*i;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++*i;
        if (*i < input_.size() &&
            (input_[*i] == '-' || input_[*i] == '+') &&
            (input_[*i - 1] == 'e' || input_[*i - 1] == 'E')) {
          ++*i;
        }
      } else {
        break;
      }
    }
    Token t{TokenKind::kNumber, input_.substr(start, *i - start), start};
    t.is_float = is_float;
    return t;
  }

  Token LexIdentifier(size_t* i) {
    size_t start = *i;
    while (*i < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[*i])) ||
            input_[*i] == '_')) {
      ++*i;
    }
    return Token{TokenKind::kIdentifier, input_.substr(start, *i - start),
                 start};
  }

  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedSql> Parse() {
    PCLEAN_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    ParsedSql out;
    if (TryKeyword("DISTINCT")) {
      out.select_distinct = true;
      PCLEAN_ASSIGN_OR_RETURN(out.distinct_attribute,
                              ExpectIdentifier("attribute"));
    } else {
      PCLEAN_RETURN_NOT_OK(ParseAggregate(&out));
    }
    PCLEAN_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PCLEAN_ASSIGN_OR_RETURN(out.table_name, ExpectIdentifier("table name"));
    if (TryKeyword("WHERE")) {
      PCLEAN_ASSIGN_OR_RETURN(SqlExpr where, ParseOrExpr());
      out.where = std::move(where);
    }
    size_t clause_pos = 0;
    if (TryKeywordAt("GROUP", &clause_pos)) {
      PCLEAN_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (out.select_distinct) {
        return ErrAt(clause_pos, "SELECT DISTINCT does not take GROUP BY");
      }
      PCLEAN_ASSIGN_OR_RETURN(out.group_by,
                              ExpectIdentifier("grouping attribute"));
    }
    if (TryKeywordAt("ORDER", &clause_pos)) {
      PCLEAN_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (out.group_by.empty() && !out.select_distinct) {
        return ErrAt(clause_pos,
                     "ORDER BY requires GROUP BY or SELECT DISTINCT");
      }
      PCLEAN_RETURN_NOT_OK(ParseOrderKey(&out));
      SqlOrderBy& order = *out.order_by;
      if (TryKeyword("DESC")) {
        order.descending = true;
      } else {
        TryKeyword("ASC");
      }
    }
    if (TryKeywordAt("LIMIT", &clause_pos)) {
      if (out.group_by.empty() && !out.select_distinct) {
        return ErrAt(clause_pos,
                     "LIMIT requires GROUP BY or SELECT DISTINCT");
      }
      if (Peek().kind != TokenKind::kNumber) {
        return Err("LIMIT expects a non-negative integer");
      }
      Token num = Advance();
      if (num.is_float) {
        return ErrAt(num.position, "LIMIT expects an integer, got '" +
                                       num.text + "'");
      }
      auto v = ParseInt64(num.text);
      if (!v.ok()) return NumberErr(num);
      if (v.ValueOrDie() < 0) {
        return ErrAt(num.position, "LIMIT must be non-negative, got '" +
                                       num.text + "'");
      }
      out.limit = static_cast<uint64_t>(v.ValueOrDie());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    if (out.where.has_value()) {
      // Pre-compute the estimator routing when the tree has one: callers
      // keep reading `query.predicate`/`conjunct` as before. A tree
      // without a plan still parses — execution surfaces the typed
      // "not privately answerable" error from PlanWhere.
      auto plan = PlanWhere(*out.where, out.query.agg);
      if (plan.ok()) {
        out.query.predicate = std::move(plan.ValueOrDie().predicate);
        out.conjunct = std::move(plan.ValueOrDie().conjunct);
      }
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t at = pos_ + ahead;
    return tokens_[at < tokens_.size() ? at : tokens_.size() - 1];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return ErrAt(Peek().position, msg);
  }

  Status ErrAt(size_t pos, const std::string& msg) const {
    return Status::InvalidArgument("SQL error at position " +
                                   std::to_string(pos) + ": " + msg);
  }

  /// Positioned error for a numeric token the lexer accepted but the
  /// numeric grammar rejects (e.g. '1.2.3', '1e', an out-of-range int).
  Status NumberErr(const Token& num) const {
    return ErrAt(num.position,
                 "malformed numeric literal '" + num.text + "'");
  }

  bool TryKeyword(const std::string& upper) {
    if (Peek().kind == TokenKind::kIdentifier && !Peek().quoted &&
        ToLowerAscii(Peek().text) == ToLowerAscii(upper)) {
      Advance();
      return true;
    }
    return false;
  }

  bool TryKeywordAt(const std::string& upper, size_t* pos) {
    size_t at = Peek().position;
    if (TryKeyword(upper)) {
      *pos = at;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& upper) {
    if (!TryKeyword(upper)) {
      return Err("expected " + upper);
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected " + what);
    }
    return Advance().text;
  }

  bool TrySymbol(const std::string& symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (!TrySymbol(symbol)) {
      return Err("expected '" + symbol + "'");
    }
    return Status::OK();
  }

  /// COUNT's argument: * or any literal spelling of the number one
  /// (1, 01, +1, 1.0 — compared by value, not token text).
  Status ParseCountArgument() {
    if (TrySymbol("*")) return Status::OK();
    if (Peek().kind != TokenKind::kNumber) {
      return Err("COUNT takes 1 or * (predicates go in WHERE)");
    }
    Token num = Advance();
    double value = 0.0;
    if (num.is_float) {
      auto v = ParseDouble(num.text);
      if (!v.ok()) return NumberErr(num);
      value = v.ValueOrDie();
    } else {
      auto v = ParseInt64(num.text);
      if (!v.ok()) return NumberErr(num);
      value = static_cast<double>(v.ValueOrDie());
    }
    if (value != 1.0) {
      return ErrAt(num.position, "COUNT takes 1 or * (got '" + num.text +
                                     "'; predicates go in WHERE)");
    }
    return Status::OK();
  }

  Status ParseAggregate(ParsedSql* out) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdentifier) {
      return Err("expected aggregate function");
    }
    if (t.quoted) {
      return ErrAt(t.position, "quoted identifier \"" + t.text +
                                   "\" cannot name an aggregate function");
    }
    AggregateQuery* query = &out->query;
    std::string lower = ToLowerAscii(t.text);
    if (lower == "count") {
      query->agg = AggregateType::kCount;
    } else if (lower == "sum") {
      query->agg = AggregateType::kSum;
    } else if (lower == "avg") {
      query->agg = AggregateType::kAvg;
    } else if (lower == "min") {
      query->agg = AggregateType::kMin;
    } else if (lower == "max") {
      query->agg = AggregateType::kMax;
    } else if (lower == "median") {
      query->agg = AggregateType::kMedian;
    } else if (lower == "var") {
      query->agg = AggregateType::kVar;
    } else if (lower == "std") {
      query->agg = AggregateType::kStd;
    } else if (lower == "percentile") {
      query->agg = AggregateType::kPercentile;
    } else {
      return Err("unknown aggregate '" + t.text + "'");
    }
    Advance();
    PCLEAN_RETURN_NOT_OK(ExpectSymbol("("));
    if (query->agg == AggregateType::kCount) {
      if (TryKeyword("DISTINCT")) {
        out->count_distinct = true;
        PCLEAN_ASSIGN_OR_RETURN(out->distinct_attribute,
                                ExpectIdentifier("attribute"));
      } else {
        PCLEAN_RETURN_NOT_OK(ParseCountArgument());
      }
    } else {
      PCLEAN_ASSIGN_OR_RETURN(query->numeric_attribute,
                              ExpectIdentifier("numeric attribute"));
      if (query->agg == AggregateType::kPercentile) {
        // PERCENTILE(attr, p) with p in [0, 100].
        PCLEAN_RETURN_NOT_OK(ExpectSymbol(","));
        if (Peek().kind != TokenKind::kNumber) {
          return Err("PERCENTILE expects a numeric rank, e.g. "
                     "percentile(score, 90)");
        }
        const Token& rank = Advance();
        auto parsed_rank = ParseDouble(rank.text);
        if (!parsed_rank.ok()) return NumberErr(rank);
        query->percentile = parsed_rank.ValueOrDie();
        if (query->percentile < 0.0 || query->percentile > 100.0) {
          return Err("percentile rank must be in [0, 100]");
        }
      }
    }
    return ExpectSymbol(")");
  }

  /// ORDER BY key: the grouping attribute, or COUNT(1|*) for
  /// by-estimate ordering of a GROUP BY result.
  Status ParseOrderKey(ParsedSql* out) {
    out->order_by = SqlOrderBy{};
    if (Peek().kind == TokenKind::kIdentifier && !Peek().quoted &&
        ToLowerAscii(Peek().text) == "count" &&
        Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
      size_t at = Peek().position;
      if (out->select_distinct) {
        return ErrAt(at, "ORDER BY COUNT(1) requires GROUP BY");
      }
      Advance();
      PCLEAN_RETURN_NOT_OK(ExpectSymbol("("));
      PCLEAN_RETURN_NOT_OK(ParseCountArgument());
      PCLEAN_RETURN_NOT_OK(ExpectSymbol(")"));
      out->order_by->by_estimate = true;
      return Status::OK();
    }
    size_t at = Peek().position;
    PCLEAN_ASSIGN_OR_RETURN(std::string key,
                            ExpectIdentifier("ORDER BY key"));
    const std::string& expected = out->select_distinct
                                      ? out->distinct_attribute
                                      : out->group_by;
    if (key != expected) {
      return ErrAt(at, "ORDER BY key '" + key +
                           "' must be the grouping attribute '" + expected +
                           "' or COUNT(1)");
    }
    out->order_by->by_estimate = false;
    return Status::OK();
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString: {
        std::string text = Advance().text;
        return Value(std::move(text));
      }
      case TokenKind::kNumber: {
        Token num = Advance();
        if (num.is_float) {
          auto v = ParseDouble(num.text);
          if (!v.ok()) return NumberErr(num);
          return Value(v.ValueOrDie());
        }
        auto v = ParseInt64(num.text);
        if (!v.ok()) return NumberErr(num);
        return Value(v.ValueOrDie());
      }
      case TokenKind::kIdentifier:
        if (t.quoted) {
          return ErrAt(t.position,
                       "quoted name \"" + t.text +
                           "\" is an identifier, not a literal "
                           "(string literals use single quotes)");
        }
        if (ToLowerAscii(t.text) == "null") {
          Advance();
          return Value::Null();
        }
        return Err("expected a literal (strings use single quotes)");
      default:
        return Err("expected a literal");
    }
  }

  Result<SqlCondition> ParseCondition() {
    PCLEAN_ASSIGN_OR_RETURN(std::string attribute,
                            ExpectIdentifier("attribute"));
    SqlCondition cond;
    cond.attribute = std::move(attribute);
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol) {
      std::optional<CompareOp> op;
      if (t.text == "=") op = CompareOp::kEq;
      else if (t.text == "!=") op = CompareOp::kNe;
      else if (t.text == "<") op = CompareOp::kLt;
      else if (t.text == "<=") op = CompareOp::kLe;
      else if (t.text == ">") op = CompareOp::kGt;
      else if (t.text == ">=") op = CompareOp::kGe;
      if (op.has_value()) {
        Advance();
        PCLEAN_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
        cond.kind = SqlCondition::Kind::kCompare;
        cond.op = *op;
        cond.literals.push_back(std::move(literal));
        return cond;
      }
    }
    if (TryKeyword("IN")) {
      PCLEAN_RETURN_NOT_OK(ExpectSymbol("("));
      for (;;) {
        PCLEAN_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
        cond.literals.push_back(std::move(literal));
        if (TrySymbol(",")) continue;
        break;
      }
      PCLEAN_RETURN_NOT_OK(ExpectSymbol(")"));
      cond.kind = SqlCondition::Kind::kIn;
      return cond;
    }
    if (TryKeyword("IS")) {
      cond.is_not_null = TryKeyword("NOT");
      if (!TryKeyword("NULL")) {
        return Err("expected NULL after IS [NOT]");
      }
      cond.kind = SqlCondition::Kind::kIsNull;
      return cond;
    }
    return Err("expected =, !=, <>, <, <=, >, >=, IN, or IS after "
               "attribute '" + cond.attribute + "'");
  }

  // Predicate expression grammar, loosest-binding first:
  //   or    := and (OR and)*
  //   and   := unary (AND unary)*
  //   unary := NOT unary | ( or ) | condition
  Result<SqlExpr> ParseOrExpr() {
    PCLEAN_ASSIGN_OR_RETURN(SqlExpr first, ParseAndExpr());
    if (!TryKeyword("OR")) return first;
    std::vector<SqlExpr> children;
    children.push_back(std::move(first));
    do {
      PCLEAN_ASSIGN_OR_RETURN(SqlExpr next, ParseAndExpr());
      children.push_back(std::move(next));
    } while (TryKeyword("OR"));
    return SqlExpr::MakeOr(std::move(children));
  }

  Result<SqlExpr> ParseAndExpr() {
    PCLEAN_ASSIGN_OR_RETURN(SqlExpr first, ParseUnaryExpr());
    if (!TryKeyword("AND")) return first;
    std::vector<SqlExpr> children;
    children.push_back(std::move(first));
    do {
      PCLEAN_ASSIGN_OR_RETURN(SqlExpr next, ParseUnaryExpr());
      children.push_back(std::move(next));
    } while (TryKeyword("AND"));
    return SqlExpr::MakeAnd(std::move(children));
  }

  Result<SqlExpr> ParseUnaryExpr() {
    if (TryKeyword("NOT")) {
      PCLEAN_ASSIGN_OR_RETURN(SqlExpr inner, ParseUnaryExpr());
      return SqlExpr::Not(std::move(inner));
    }
    if (TrySymbol("(")) {
      PCLEAN_ASSIGN_OR_RETURN(SqlExpr inner, ParseOrExpr());
      PCLEAN_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    PCLEAN_ASSIGN_OR_RETURN(SqlCondition cond, ParseCondition());
    return SqlExpr::Leaf(std::move(cond));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::string JoinAttributes(const std::vector<std::string>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += "'" + attrs[i] + "'";
  }
  return out;
}

}  // namespace

Result<ParsedSql> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  PCLEAN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<WherePlan> PlanWhere(const SqlExpr& where, AggregateType agg) {
  std::vector<std::string> attrs = SqlExprAttributes(where);
  if (attrs.empty()) {
    return Status::Internal("WHERE tree references no attribute");
  }
  WherePlan plan;
  if (attrs.size() == 1) {
    // Any boolean structure over one attribute reduces to subset
    // membership M_pred, which is all the corrected estimators need.
    PCLEAN_ASSIGN_OR_RETURN(Predicate collapsed,
                            CollapseSingleAttribute(where));
    plan.predicate = std::move(collapsed);
    return plan;
  }
  if (attrs.size() > 2) {
    return Status::FailedPrecondition(
        "not privately answerable: WHERE references " +
        std::to_string(attrs.size()) + " attributes (" +
        JoinAttributes(attrs) +
        "); the conjunctive estimator composes exactly two");
  }
  if (agg != AggregateType::kCount) {
    return Status::FailedPrecondition(
        std::string("not privately answerable: multi-attribute WHERE with ") +
        AggregateTypeToString(agg) +
        "(...) — the conjunctive estimator is derived for COUNT only");
  }
  if (where.kind != SqlExpr::Kind::kAnd) {
    return Status::FailedPrecondition(
        "not privately answerable: OR/NOT across attributes " +
        JoinAttributes(attrs) +
        " — only an AND of two single-attribute condition groups has a "
        "derived estimator (the §10 conjunctive COUNT)");
  }
  std::vector<SqlExpr> group_a;
  std::vector<SqlExpr> group_b;
  for (const SqlExpr& child : where.children) {
    std::vector<std::string> child_attrs = SqlExprAttributes(child);
    if (child_attrs.size() != 1) {
      return Status::FailedPrecondition(
          "not privately answerable: an AND operand mixes attributes " +
          JoinAttributes(child_attrs) +
          " — group each attribute's conditions so the WHERE is "
          "<conditions on one attribute> AND <conditions on the other>");
    }
    (child_attrs.front() == attrs.front() ? group_a : group_b)
        .push_back(child);
  }
  PCLEAN_ASSIGN_OR_RETURN(Predicate pred_a, CollapseSingleAttribute(
                                                SqlExpr::MakeAnd(group_a)));
  PCLEAN_ASSIGN_OR_RETURN(Predicate pred_b, CollapseSingleAttribute(
                                                SqlExpr::MakeAnd(group_b)));
  plan.predicate = std::move(pred_a);
  plan.conjunct = std::move(pred_b);
  return plan;
}

namespace {

/// Keywords the renderer must quote when they appear as identifiers.
bool IsKeywordLower(const std::string& lower) {
  static const std::array<const char*, 17> kKeywords = {
      "select", "distinct", "from", "where", "and",  "or",
      "not",    "in",       "is",   "null",  "group", "order",
      "by",     "asc",      "desc", "limit", "count"};
  for (const char* kw : kKeywords) {
    if (lower == kw) return true;
  }
  return false;
}

std::string RenderIdentifier(const std::string& name) {
  bool bare = !name.empty() &&
              (std::isalpha(static_cast<unsigned char>(name[0])) ||
               name[0] == '_') &&
              !IsKeywordLower(ToLowerAscii(name));
  if (bare) {
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        bare = false;
        break;
      }
    }
  }
  if (bare) return name;
  std::string out = "\"";
  for (char c : name) {
    out.push_back(c);
    if (c == '"') out.push_back('"');
  }
  out.push_back('"');
  return out;
}

int ExprPrecedence(SqlExpr::Kind kind) {
  switch (kind) {
    case SqlExpr::Kind::kOr:
      return 1;
    case SqlExpr::Kind::kAnd:
      return 2;
    case SqlExpr::Kind::kNot:
      return 3;
    case SqlExpr::Kind::kCondition:
      return 4;
  }
  return 4;
}

std::string RenderExpr(const SqlExpr& expr);

std::string RenderChild(const SqlExpr& child, int parent_precedence) {
  std::string s = RenderExpr(child);
  if (ExprPrecedence(child.kind) < parent_precedence) {
    return "(" + s + ")";
  }
  return s;
}

std::string RenderCondition(const SqlCondition& cond) {
  std::string out = RenderIdentifier(cond.attribute);
  switch (cond.kind) {
    case SqlCondition::Kind::kCompare:
      out += std::string(" ") + CompareOpToString(cond.op) + " " +
             RenderSqlLiteral(cond.literals.front());
      break;
    case SqlCondition::Kind::kIn: {
      out += " IN (";
      for (size_t i = 0; i < cond.literals.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderSqlLiteral(cond.literals[i]);
      }
      out += ")";
      break;
    }
    case SqlCondition::Kind::kIsNull:
      out += cond.is_not_null ? " IS NOT NULL" : " IS NULL";
      break;
  }
  return out;
}

std::string RenderExpr(const SqlExpr& expr) {
  switch (expr.kind) {
    case SqlExpr::Kind::kCondition:
      return RenderCondition(expr.condition);
    case SqlExpr::Kind::kNot:
      return "NOT " + RenderChild(expr.children.front(), 3);
    case SqlExpr::Kind::kAnd: {
      std::string out;
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += " AND ";
        out += RenderChild(expr.children[i], 2);
      }
      return out;
    }
    case SqlExpr::Kind::kOr: {
      std::string out;
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += " OR ";
        out += RenderChild(expr.children[i], 1);
      }
      return out;
    }
  }
  return "";
}

std::string ToUpperAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::string RenderSqlLiteral(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(value.AsInt64());
    case ValueType::kDouble: {
      std::string s = FormatDouble(value.AsDouble());
      // Keep the literal re-parsing as a double: an integral double must
      // not collapse to integer syntax (Value(3.0) != Value(3)).
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find('E') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : value.AsString()) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      out.push_back('\'');
      return out;
    }
  }
  return "NULL";
}

std::string RenderSql(const ParsedSql& parsed) {
  std::string out = "SELECT ";
  if (parsed.select_distinct) {
    out += "DISTINCT " + RenderIdentifier(parsed.distinct_attribute);
  } else if (parsed.count_distinct) {
    out += "COUNT(DISTINCT " + RenderIdentifier(parsed.distinct_attribute) +
           ")";
  } else if (parsed.query.agg == AggregateType::kCount) {
    out += "COUNT(1)";
  } else if (parsed.query.agg == AggregateType::kPercentile) {
    out += "PERCENTILE(" + RenderIdentifier(parsed.query.numeric_attribute) +
           ", " + FormatDouble(parsed.query.percentile) + ")";
  } else {
    out += ToUpperAscii(AggregateTypeToString(parsed.query.agg)) + "(" +
           RenderIdentifier(parsed.query.numeric_attribute) + ")";
  }
  out += " FROM " + RenderIdentifier(parsed.table_name);
  if (parsed.where.has_value()) {
    out += " WHERE " + RenderExpr(*parsed.where);
  }
  if (!parsed.group_by.empty()) {
    out += " GROUP BY " + RenderIdentifier(parsed.group_by);
  }
  if (parsed.order_by.has_value()) {
    out += " ORDER BY ";
    if (parsed.order_by->by_estimate) {
      out += "COUNT(1)";
    } else {
      out += RenderIdentifier(parsed.select_distinct
                                  ? parsed.distinct_attribute
                                  : parsed.group_by);
    }
    if (parsed.order_by->descending) out += " DESC";
  }
  if (parsed.limit.has_value()) {
    out += " LIMIT " + std::to_string(*parsed.limit);
  }
  return out;
}

}  // namespace privateclean
