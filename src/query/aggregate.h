#ifndef PRIVATECLEAN_QUERY_AGGREGATE_H_
#define PRIVATECLEAN_QUERY_AGGREGATE_H_

#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/thread_pool.h"
#include "query/predicate.h"
#include "query/vectorized.h"
#include "table/table.h"

namespace privateclean {

/// Supported aggregate functions. The paper's core class is
/// sum/count/avg (§3.2.2); median/percentile/var/std are the §10
/// extensions (Laplace noise has zero median, and its variance 2b² can be
/// subtracted from var). min/max exist for ground truth and the Direct
/// baseline only — extreme values are destroyed by randomization, so no
/// bias-corrected private estimator exists (the private entry points
/// reject them with a typed FailedPrecondition).
enum class AggregateType {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMedian = 3,
  kPercentile = 4,
  kVar = 5,
  kStd = 6,
  kMin = 7,
  kMax = 8,
};

const char* AggregateTypeToString(AggregateType agg);

/// `SELECT agg(numeric_attribute) FROM t WHERE predicate`.
///
/// `numeric_attribute` is ignored for kCount (SQL `count(1)`). A missing
/// predicate aggregates over the whole relation. `percentile` is only
/// meaningful for kPercentile.
struct AggregateQuery {
  AggregateType agg = AggregateType::kCount;
  std::string numeric_attribute;
  std::optional<Predicate> predicate;
  double percentile = 50.0;

  static AggregateQuery Count(std::optional<Predicate> pred = std::nullopt);
  static AggregateQuery Sum(std::string attr,
                            std::optional<Predicate> pred = std::nullopt);
  static AggregateQuery Avg(std::string attr,
                            std::optional<Predicate> pred = std::nullopt);
};

/// Executes the aggregate exactly on a (non-private) table. This is how
/// ground truth f(R_clean) is computed in the experiments, and also how
/// the Direct estimator reads nominal values off the private relation.
///
/// Null semantics: count counts rows (regardless of the numeric
/// attribute); sum skips null numeric entries; avg = sum of non-null
/// entries / count of predicate-matching rows with non-null numeric value.
/// Avg over a selection with zero (non-null) matching rows is a
/// FailedPrecondition, never 0 or NaN.
///
/// The scan runs vectorized: each shard walks its rows in fixed-size
/// batches (kVectorBatchRows), evaluating the compiled predicate into a
/// stack mask and accumulating matching rows in row order. Per-shard
/// partials (counts, sums, Welford moments, min/max, value buffers)
/// merge in shard index order, so the result — including floating-point
/// sums and the median/percentile value order — is bit-identical at every
/// thread count (batch boundaries are thread-count-independent).
Result<double> ExecuteAggregate(const Table& table,
                                const AggregateQuery& query,
                                const ExecutionOptions& exec = {});

/// Same, against an already-compiled predicate — how the SQL executors
/// run multi-attribute WHERE trees (compiled once, no Predicate
/// collapse). `query.predicate` is ignored; `predicate` supplies the
/// row mask.
Result<double> ExecuteAggregate(const Table& table,
                                const AggregateQuery& query,
                                const CompiledPredicate& predicate,
                                const ExecutionOptions& exec = {});

/// One-pass scan producing everything the PrivateClean estimators need
/// (Section 5): the nominal count and sums under the predicate and its
/// complement, plus moments of the numeric attribute over the whole
/// relation (for the confidence intervals).
struct QueryScanStats {
  size_t total_rows = 0;          ///< S
  size_t matching_rows = 0;       ///< nominal private count c_private
  double matching_sum = 0.0;      ///< h_private
  double complement_sum = 0.0;    ///< h_private^c
  double numeric_mean = 0.0;      ///< μ_p over all rows
  double numeric_variance = 0.0;  ///< σ_p² over all rows (population)
};

/// Computes QueryScanStats for `predicate` over `numeric_attribute`.
/// For count-only queries pass an empty `numeric_attribute`; the sums and
/// moments are then zero.
///
/// The scan is sharded per `exec` (common/thread_pool.h): each shard
/// accumulates its own partial stats, merged in shard index order, so for
/// a fixed table the result is identical at every thread count (the shard
/// layout depends only on the row count).
Result<QueryScanStats> ScanWithPredicate(const Table& table,
                                         const Predicate& predicate,
                                         const std::string& numeric_attribute,
                                         const ExecutionOptions& exec = {});

/// `SELECT group, count(1) FROM t GROUP BY group_attribute` — used by the
/// TPC-DS experiment (§8.3.4). Keys are the boxed group values, so a
/// NULL group gets its own bucket (Value::Null()) and can never collide
/// with a genuine empty-string group; render keys with RenderSqlLiteral
/// (query/sql.h) for unambiguous display.
Result<std::map<Value, size_t>> GroupByCount(
    const Table& table, const std::string& group_attribute);

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_AGGREGATE_H_
