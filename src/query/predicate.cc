#include "query/predicate.h"

#include "query/vectorized.h"

namespace privateclean {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ComparesTrue(CompareOp op, const Value& v, const Value& bound) {
  if (op == CompareOp::kEq) return v == bound;
  if (op == CompareOp::kNe) return v != bound;
  const ValueType vt = v.type();
  const ValueType bt = bound.type();
  const bool v_numeric = vt == ValueType::kInt64 || vt == ValueType::kDouble;
  const bool b_numeric = bt == ValueType::kInt64 || bt == ValueType::kDouble;
  int cmp = 0;
  if (v_numeric && b_numeric) {
    if (vt == ValueType::kInt64 && bt == ValueType::kInt64) {
      int64_t a = v.AsInt64();
      int64_t b = bound.AsInt64();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      double a = vt == ValueType::kInt64 ? static_cast<double>(v.AsInt64())
                                         : v.AsDouble();
      double b = bt == ValueType::kInt64 ? static_cast<double>(bound.AsInt64())
                                         : bound.AsDouble();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
  } else if (vt == ValueType::kString && bt == ValueType::kString) {
    int c = v.AsString().compare(bound.AsString());
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else {
    // NULL or mixed string/numeric operands: no defined order.
    return false;
  }
  switch (op) {
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    default:
      return false;  // kEq/kNe handled above.
  }
}

Predicate Predicate::Equals(std::string attribute, Value value) {
  Predicate p(std::move(attribute), Mode::kIn);
  p.values_.insert(std::move(value));
  return p;
}

Predicate Predicate::In(std::string attribute, std::vector<Value> values) {
  Predicate p(std::move(attribute), Mode::kIn);
  for (auto& v : values) p.values_.insert(std::move(v));
  return p;
}

Predicate Predicate::IsNull(std::string attribute) {
  return Equals(std::move(attribute), Value::Null());
}

Predicate Predicate::IsNotNull(std::string attribute) {
  return IsNull(std::move(attribute)).Negate();
}

Predicate Predicate::Compare(std::string attribute, CompareOp op, Value bound) {
  if (op == CompareOp::kEq) {
    return Equals(std::move(attribute), std::move(bound));
  }
  if (op == CompareOp::kNe) {
    return Equals(std::move(attribute), std::move(bound)).Negate();
  }
  Predicate p(std::move(attribute), Mode::kCompare);
  p.compare_op_ = op;
  p.compare_bound_ = std::move(bound);
  return p;
}

Predicate Predicate::Udf(std::string attribute,
                         std::function<bool(const Value&)> fn) {
  Predicate p(std::move(attribute), Mode::kUdf);
  p.fn_ = std::move(fn);
  return p;
}

Predicate Predicate::Negate() const {
  Predicate p = *this;
  p.negated_ = !p.negated_;
  return p;
}

bool Predicate::MatchesIgnoringNegation(const Value& v) const {
  if (mode_ == Mode::kIn) return values_.count(v) > 0;
  if (mode_ == Mode::kCompare) return ComparesTrue(compare_op_, v, compare_bound_);
  return fn_(v);
}

bool Predicate::Matches(const Value& v) const {
  return MatchesIgnoringNegation(v) != negated_;
}

Result<std::vector<uint8_t>> Predicate::Evaluate(
    const Table& table, const ExecutionOptions& exec) const {
  // One engine for every mask: compile (string columns get the
  // dictionary match-table gather, numeric columns typed kernels or a
  // memoized boxed loop) and run batched through the deterministic
  // shards. See query/vectorized.h.
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attribute_));
  PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                          CompiledPredicate::Compile(table, *this));
  return compiled.EvaluateAll(col->size(), exec);
}

std::vector<Value> Predicate::MatchingValues(const Domain& domain) const {
  std::vector<Value> out;
  for (size_t i = 0; i < domain.size(); ++i) {
    if (Matches(domain.value(i))) out.push_back(domain.value(i));
  }
  return out;
}

Result<size_t> Predicate::CountMatches(const Table& table,
                                       const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(auto mask, Evaluate(table, exec));
  size_t n = 0;
  for (uint8_t m : mask) n += m;
  return n;
}

}  // namespace privateclean
