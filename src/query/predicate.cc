#include "query/predicate.h"

namespace privateclean {

Predicate Predicate::Equals(std::string attribute, Value value) {
  Predicate p(std::move(attribute), Mode::kIn);
  p.values_.insert(std::move(value));
  return p;
}

Predicate Predicate::In(std::string attribute, std::vector<Value> values) {
  Predicate p(std::move(attribute), Mode::kIn);
  for (auto& v : values) p.values_.insert(std::move(v));
  return p;
}

Predicate Predicate::IsNull(std::string attribute) {
  return Equals(std::move(attribute), Value::Null());
}

Predicate Predicate::IsNotNull(std::string attribute) {
  return IsNull(std::move(attribute)).Negate();
}

Predicate Predicate::Udf(std::string attribute,
                         std::function<bool(const Value&)> fn) {
  Predicate p(std::move(attribute), Mode::kUdf);
  p.fn_ = std::move(fn);
  return p;
}

Predicate Predicate::Negate() const {
  Predicate p = *this;
  p.negated_ = !p.negated_;
  return p;
}

bool Predicate::MatchesIgnoringNegation(const Value& v) const {
  if (mode_ == Mode::kIn) return values_.count(v) > 0;
  return fn_(v);
}

bool Predicate::Matches(const Value& v) const {
  return MatchesIgnoringNegation(v) != negated_;
}

Result<std::vector<uint8_t>> Predicate::Evaluate(const Table& table) const {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attribute_));
  // Evaluate per distinct value, then broadcast: UDFs can be arbitrarily
  // expensive and the paper's model is value-deterministic anyway.
  Domain domain;
  {
    PCLEAN_ASSIGN_OR_RETURN(
        Domain d, Domain::FromColumn(table, attribute_, /*include_null=*/true));
    domain = std::move(d);
  }
  std::vector<uint8_t> value_matches(domain.size());
  for (size_t i = 0; i < domain.size(); ++i) {
    value_matches[i] = Matches(domain.value(i)) ? 1 : 0;
  }
  std::vector<uint8_t> mask(col->size());
  for (size_t r = 0; r < col->size(); ++r) {
    size_t idx = domain.IndexOf(col->ValueAt(r)).ValueOrDie();
    mask[r] = value_matches[idx];
  }
  return mask;
}

std::vector<Value> Predicate::MatchingValues(const Domain& domain) const {
  std::vector<Value> out;
  for (size_t i = 0; i < domain.size(); ++i) {
    if (Matches(domain.value(i))) out.push_back(domain.value(i));
  }
  return out;
}

Result<size_t> Predicate::CountMatches(const Table& table) const {
  PCLEAN_ASSIGN_OR_RETURN(auto mask, Evaluate(table));
  size_t n = 0;
  for (uint8_t m : mask) n += m;
  return n;
}

}  // namespace privateclean
