#include "query/predicate.h"

#include <unordered_map>

namespace privateclean {

Predicate Predicate::Equals(std::string attribute, Value value) {
  Predicate p(std::move(attribute), Mode::kIn);
  p.values_.insert(std::move(value));
  return p;
}

Predicate Predicate::In(std::string attribute, std::vector<Value> values) {
  Predicate p(std::move(attribute), Mode::kIn);
  for (auto& v : values) p.values_.insert(std::move(v));
  return p;
}

Predicate Predicate::IsNull(std::string attribute) {
  return Equals(std::move(attribute), Value::Null());
}

Predicate Predicate::IsNotNull(std::string attribute) {
  return IsNull(std::move(attribute)).Negate();
}

Predicate Predicate::Udf(std::string attribute,
                         std::function<bool(const Value&)> fn) {
  Predicate p(std::move(attribute), Mode::kUdf);
  p.fn_ = std::move(fn);
  return p;
}

Predicate Predicate::Negate() const {
  Predicate p = *this;
  p.negated_ = !p.negated_;
  return p;
}

bool Predicate::MatchesIgnoringNegation(const Value& v) const {
  if (mode_ == Mode::kIn) return values_.count(v) > 0;
  return fn_(v);
}

bool Predicate::Matches(const Value& v) const {
  return MatchesIgnoringNegation(v) != negated_;
}

Result<std::vector<uint8_t>> Predicate::Evaluate(
    const Table& table, const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attribute_));
  std::vector<uint8_t> mask(col->size());
  if (col->type() == ValueType::kString) {
    // Dictionary fast path: the predicate is value-deterministic, so it
    // is evaluated once per *distinct* value (O(distinct) boxed calls)
    // into a code-indexed match table; the sharded row pass is then a
    // pure integer gather. The slot past the dictionary is null.
    const StringDictionary& dict = col->dictionary();
    std::vector<uint8_t> match(dict.size() + 1, 0);
    for (uint32_t c = 0; c < dict.size(); ++c) {
      match[c] = Matches(Value(std::string(dict.At(c)))) ? 1 : 0;
    }
    match[dict.size()] = Matches(Value::Null()) ? 1 : 0;
    const uint32_t* codes = col->codes().data();
    const size_t null_slot = dict.size();
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        col->size(), ShardCountForRows(col->size()), exec,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t r = begin; r < end; ++r) {
            mask[r] =
                match[codes[r] == kNullCode ? null_slot : codes[r]];
          }
          return Status::OK();
        }));
    return mask;
  }
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      col->size(), ShardCountForRows(col->size()), exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        // Memoize per distinct value within the shard: UDFs can be
        // arbitrarily expensive and the paper's model is
        // value-deterministic anyway, so repeats cost one hash lookup.
        std::unordered_map<Value, bool, ValueHash> memo;
        for (size_t r = begin; r < end; ++r) {
          Value v = col->ValueAt(r);
          auto it = memo.find(v);
          if (it == memo.end()) {
            bool m = Matches(v);
            it = memo.emplace(std::move(v), m).first;
          }
          mask[r] = it->second ? 1 : 0;
        }
        return Status::OK();
      }));
  return mask;
}

std::vector<Value> Predicate::MatchingValues(const Domain& domain) const {
  std::vector<Value> out;
  for (size_t i = 0; i < domain.size(); ++i) {
    if (Matches(domain.value(i))) out.push_back(domain.value(i));
  }
  return out;
}

Result<size_t> Predicate::CountMatches(const Table& table,
                                       const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(auto mask, Evaluate(table, exec));
  size_t n = 0;
  for (uint8_t m : mask) n += m;
  return n;
}

}  // namespace privateclean
