#ifndef PRIVATECLEAN_QUERY_PREDICATE_H_
#define PRIVATECLEAN_QUERY_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "table/domain.h"
#include "table/table.h"

namespace privateclean {

/// Comparison operator of a SQL condition. kEq/kNe exist so the parser
/// can name every operator uniformly; Predicate::Compare normalizes them
/// to Equals / Equals().Negate().
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// SQL spelling: "=", "!=", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

/// Whether `v op bound` holds. The ordering operators compare numerics
/// with int64→double promotion and strings lexicographically; NULL and
/// mixed string/numeric operands satisfy no ordering operator. kEq/kNe
/// use Value's typed structural equality (so Value(3) != Value(3.0)),
/// matching Predicate::Equals.
bool ComparesTrue(CompareOp op, const Value& v, const Value& bound);

/// Predicate over a single discrete attribute (the paper's `cond(d)`,
/// Section 3.2.2). Every deterministic predicate is equivalent to
/// membership in a subset of the attribute's distinct values, which is
/// exactly how the bias analysis uses it: `MatchingValues(domain)` yields
/// the paper's M_pred, whose size is the distinct-value selectivity l'.
///
/// Construction:
///   Predicate::Equals("major", "EECS")
///   Predicate::In("country", {"FR", "DE", "IT"})
///   Predicate::IsNotNull("sensor_id")
///   Predicate::Udf("country", [](const Value& v) { return IsEurope(v); })
/// plus `Negate()` for complements (used by the SUM estimator, §5.5).
class Predicate {
 public:
  /// d == value. A null `value` matches null entries.
  static Predicate Equals(std::string attribute, Value value);

  /// d ∈ values.
  static Predicate In(std::string attribute, std::vector<Value> values);

  /// d is null / d is not null.
  static Predicate IsNull(std::string attribute);
  static Predicate IsNotNull(std::string attribute);

  /// d op bound — an ordering comparison (SQL `score >= 3`). NULL never
  /// satisfies an ordering comparison. kEq and kNe inputs are normalized
  /// to Equals / Equals().Negate().
  static Predicate Compare(std::string attribute, CompareOp op, Value bound);

  /// Arbitrary deterministic condition. The function must be pure: it is
  /// evaluated at most once per distinct value per shard, not once per
  /// row, and may be called concurrently from evaluation shards.
  static Predicate Udf(std::string attribute,
                       std::function<bool(const Value&)> fn);

  /// Logical complement of this predicate.
  Predicate Negate() const;

  /// The discrete attribute this predicate conditions on.
  const std::string& attribute() const { return attribute_; }

  bool negated() const { return negated_; }

  /// Whether a single value satisfies the predicate.
  bool Matches(const Value& v) const;

  /// Row mask over `table` (1 = predicate true). Rows are sharded per
  /// `exec` (common/thread_pool.h); the mask is independent of the
  /// thread count since the predicate is value-deterministic.
  Result<std::vector<uint8_t>> Evaluate(const Table& table,
                                        const ExecutionOptions& exec = {}) const;

  /// The subset of `domain` that satisfies the predicate (paper's M_pred).
  std::vector<Value> MatchingValues(const Domain& domain) const;

  /// Number of rows in `table` satisfying the predicate.
  Result<size_t> CountMatches(const Table& table,
                              const ExecutionOptions& exec = {}) const;

  /// --- Introspection for the vectorized compiler (query/vectorized.h) --

  /// Membership predicate (Equals/In/IsNull): d ∈ membership_values().
  bool is_membership() const { return mode_ == Mode::kIn; }
  const std::unordered_set<Value, ValueHash>& membership_values() const {
    return values_;
  }

  /// Ordering comparison: d comparison_op() comparison_bound().
  bool is_comparison() const { return mode_ == Mode::kCompare; }
  CompareOp comparison_op() const { return compare_op_; }
  const Value& comparison_bound() const { return compare_bound_; }

 private:
  enum class Mode { kIn, kCompare, kUdf };

  Predicate(std::string attribute, Mode mode)
      : attribute_(std::move(attribute)), mode_(mode) {}

  bool MatchesIgnoringNegation(const Value& v) const;

  std::string attribute_;
  Mode mode_;
  bool negated_ = false;
  std::unordered_set<Value, ValueHash> values_;
  CompareOp compare_op_ = CompareOp::kEq;
  Value compare_bound_;
  std::function<bool(const Value&)> fn_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_PREDICATE_H_
