#ifndef PRIVATECLEAN_QUERY_PREDICATE_H_
#define PRIVATECLEAN_QUERY_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "table/domain.h"
#include "table/table.h"

namespace privateclean {

/// Predicate over a single discrete attribute (the paper's `cond(d)`,
/// Section 3.2.2). Every deterministic predicate is equivalent to
/// membership in a subset of the attribute's distinct values, which is
/// exactly how the bias analysis uses it: `MatchingValues(domain)` yields
/// the paper's M_pred, whose size is the distinct-value selectivity l'.
///
/// Construction:
///   Predicate::Equals("major", "EECS")
///   Predicate::In("country", {"FR", "DE", "IT"})
///   Predicate::IsNotNull("sensor_id")
///   Predicate::Udf("country", [](const Value& v) { return IsEurope(v); })
/// plus `Negate()` for complements (used by the SUM estimator, §5.5).
class Predicate {
 public:
  /// d == value. A null `value` matches null entries.
  static Predicate Equals(std::string attribute, Value value);

  /// d ∈ values.
  static Predicate In(std::string attribute, std::vector<Value> values);

  /// d is null / d is not null.
  static Predicate IsNull(std::string attribute);
  static Predicate IsNotNull(std::string attribute);

  /// Arbitrary deterministic condition. The function must be pure: it is
  /// evaluated at most once per distinct value per shard, not once per
  /// row, and may be called concurrently from evaluation shards.
  static Predicate Udf(std::string attribute,
                       std::function<bool(const Value&)> fn);

  /// Logical complement of this predicate.
  Predicate Negate() const;

  /// The discrete attribute this predicate conditions on.
  const std::string& attribute() const { return attribute_; }

  bool negated() const { return negated_; }

  /// Whether a single value satisfies the predicate.
  bool Matches(const Value& v) const;

  /// Row mask over `table` (1 = predicate true). Rows are sharded per
  /// `exec` (common/thread_pool.h); the mask is independent of the
  /// thread count since the predicate is value-deterministic.
  Result<std::vector<uint8_t>> Evaluate(const Table& table,
                                        const ExecutionOptions& exec = {}) const;

  /// The subset of `domain` that satisfies the predicate (paper's M_pred).
  std::vector<Value> MatchingValues(const Domain& domain) const;

  /// Number of rows in `table` satisfying the predicate.
  Result<size_t> CountMatches(const Table& table,
                              const ExecutionOptions& exec = {}) const;

 private:
  enum class Mode { kIn, kUdf };

  Predicate(std::string attribute, Mode mode)
      : attribute_(std::move(attribute)), mode_(mode) {}

  bool MatchesIgnoringNegation(const Value& v) const;

  std::string attribute_;
  Mode mode_;
  bool negated_ = false;
  std::unordered_set<Value, ValueHash> values_;
  std::function<bool(const Value&)> fn_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_PREDICATE_H_
