#ifndef PRIVATECLEAN_QUERY_SQL_H_
#define PRIVATECLEAN_QUERY_SQL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "query/sql_expr.h"

namespace privateclean {

/// Result shaping of a grouped query (GROUP BY / SELECT DISTINCT).
struct SqlOrderBy {
  /// true: ORDER BY COUNT(1) — sort groups by their estimate.
  /// false: ORDER BY <grouping attribute> — sort by group key.
  bool by_estimate = false;
  bool descending = false;
};

/// A parsed PrivateClean query.
///
///   SELECT <select> FROM <table>
///     [WHERE <expr>] [GROUP BY <attr>]
///     [ORDER BY <attr> | COUNT(1|*) [ASC|DESC]] [LIMIT <n>]
///
///   <select>  := COUNT(1) | COUNT(*) | COUNT(DISTINCT <attr>)
///              | SUM(<attr>) | AVG(<attr>) | MIN(<attr>) | MAX(<attr>)
///              | MEDIAN(<attr>) | VAR(<attr>) | STD(<attr>)
///              | PERCENTILE(<attr>, <rank 0-100>)
///              | DISTINCT <attr>
///   <expr>    := <or>
///   <or>      := <and> (OR <and>)*
///   <and>     := <unary> (AND <unary>)*
///   <unary>   := NOT <unary> | ( <expr> ) | <condition>
///   <condition> := <attr> ( = | != | <> | < | <= | > | >= ) <literal>
///              | <attr> IN ( <literal> [, <literal>]... )
///              | <attr> IS [NOT] NULL
///   <literal> := 'string' (doubled '' escapes a quote)
///              | integer | floating point | NULL
///
/// Keywords are case-insensitive; identifiers are case-sensitive and may
/// be double-quoted (doubled "" escapes a quote) to include spaces or
/// collide with keywords — a quoted name is always an identifier, never
/// a keyword or literal. ORDER BY/LIMIT are only accepted on grouped
/// queries (GROUP BY or SELECT DISTINCT), where they shape the
/// per-group result rows after estimation.
///
/// ParseSql accepts the full grammar; whether a form is *privately
/// answerable* is decided at execution (core/sql_execution.h): forms
/// without a bias-corrected estimator (MIN/MAX, DISTINCT, COUNT
/// (DISTINCT), multi-attribute trees beyond a two-attribute COUNT
/// conjunction, GROUP BY beyond COUNT) fail there with a typed
/// FailedPrecondition naming the offending form.
struct ParsedSql {
  std::string table_name;
  /// Aggregate + the collapsed single-attribute predicate when the WHERE
  /// tree is collapsible (see PlanWhere); `numeric_attribute`/`percentile`
  /// as parsed.
  AggregateQuery query;
  /// Second conjunct of a two-attribute COUNT conjunction (§10).
  std::optional<Predicate> conjunct;
  /// The full WHERE tree, verbatim (set iff the query has WHERE).
  std::optional<SqlExpr> where;

  /// SELECT DISTINCT <attr> / COUNT(DISTINCT <attr>).
  bool select_distinct = false;
  bool count_distinct = false;
  std::string distinct_attribute;

  std::string group_by;  ///< Grouping attribute; empty = no GROUP BY.
  std::optional<SqlOrderBy> order_by;
  std::optional<uint64_t> limit;
};

/// Parses `sql` into a ParsedSql. Returns InvalidArgument with a
/// position-annotated message on syntax errors.
Result<ParsedSql> ParseSql(const std::string& sql);

/// The private-estimation plan of a WHERE tree.
struct WherePlan {
  /// Collapsed single-attribute predicate (always set on success).
  std::optional<Predicate> predicate;
  /// Second single-attribute conjunct of a two-attribute COUNT
  /// conjunction; unset for single-attribute trees.
  std::optional<Predicate> conjunct;
};

/// Decides how a WHERE tree routes through the bias-corrected
/// estimators: a tree over one attribute collapses to a single
/// Predicate (any boolean structure — the estimators only need the
/// matching-value subset M_pred); a pure conjunction over exactly two
/// attributes under COUNT splits into the §10 conjunctive pair.
/// Everything else returns FailedPrecondition("not privately
/// answerable: ...") naming the offending form.
Result<WherePlan> PlanWhere(const SqlExpr& where, AggregateType agg);

/// Renders `value` as a SQL literal: NULL (unquoted keyword), bare
/// numbers (doubles keep a decimal point or exponent so the type
/// round-trips), and single-quoted strings with '' doubling. The
/// canonical way to print group keys unambiguously: NULL and '' render
/// differently.
std::string RenderSqlLiteral(const Value& value);

/// Renders `parsed` back to canonical SQL text. Canonical form:
/// upper-case keywords, COUNT(1) for both count spellings, `!=` for
/// `<>`, minimal parentheses, no ASC. ParseSql(RenderSql(p)) re-parses
/// to an equivalent query, and rendering is a fixed point — the
/// round-trip property the sql test suite checks for every grammar
/// production.
std::string RenderSql(const ParsedSql& parsed);

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_SQL_H_
