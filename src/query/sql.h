#ifndef PRIVATECLEAN_QUERY_SQL_H_
#define PRIVATECLEAN_QUERY_SQL_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "query/aggregate.h"
#include "query/predicate.h"

namespace privateclean {

/// A parsed PrivateClean query. The supported grammar is exactly the
/// paper's query class (§3.2.2) plus the §10 extensions:
///
///   SELECT <agg> FROM <table> [WHERE <condition> [AND <condition>]]
///
///   <agg>       := COUNT(1) | COUNT(*)
///                | SUM(<attr>) | AVG(<attr>)
///                | MEDIAN(<attr>) | VAR(<attr>) | STD(<attr>)
///                | PERCENTILE(<attr>, <rank 0-100>)
///   <condition> := <attr> =  <literal>
///                | <attr> != <literal> | <attr> <> <literal>
///                | <attr> IN ( <literal> [, <literal>]... )
///                | <attr> IS NULL | <attr> IS NOT NULL
///   <literal>   := 'string' (doubled '' escapes a quote)
///                | integer | floating point | NULL
///
/// Keywords are case-insensitive; identifiers are case-sensitive and may
/// be double-quoted to include spaces. A second AND-condition is only
/// meaningful for COUNT (the conjunctive estimator, §10) and must name a
/// different attribute than the first.
struct ParsedSql {
  std::string table_name;
  AggregateQuery query;  ///< Carries the first WHERE condition, if any.
  /// Second AND-condition (COUNT only).
  std::optional<Predicate> conjunct;
};

/// Parses `sql` into a ParsedSql. Returns InvalidArgument with a
/// position-annotated message on syntax errors.
Result<ParsedSql> ParseSql(const std::string& sql);

}  // namespace privateclean

#endif  // PRIVATECLEAN_QUERY_SQL_H_
