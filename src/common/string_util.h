#ifndef PRIVATECLEAN_COMMON_STRING_UTIL_H_
#define PRIVATECLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace privateclean {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLowerAscii(std::string_view s);

/// Splits on a single delimiter character; keeps empty fields, so
/// Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strict full-string parses (no trailing garbage, no empty input).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Formats a double compactly: integral values without a decimal point,
/// otherwise shortest round-trip representation.
std::string FormatDouble(double v);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_STRING_UTIL_H_
