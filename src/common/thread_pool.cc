#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace privateclean {

namespace {

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace

size_t ExecutionOptions::EffectiveThreads() const {
  return num_threads == 0 ? HardwareThreads() : num_threads;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  PCLEAN_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    PCLEAN_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return pool;
}

size_t ShardCountForRows(size_t num_rows) {
  if (num_rows == 0) return 1;
  return (num_rows + kRowsPerShard - 1) / kRowsPerShard;
}

size_t ChunkCountForBytes(size_t num_bytes, size_t bytes_per_chunk) {
  size_t chunk = bytes_per_chunk == 0 ? kBytesPerSplitChunk : bytes_per_chunk;
  if (num_bytes == 0) return 1;
  return (num_bytes + chunk - 1) / chunk;
}

size_t ShardCountForCoarseItems(size_t num_items) {
  return std::max<size_t>(1, std::min(num_items, kMaxCoarseShards));
}

ShardRange ShardBounds(size_t num_items, size_t num_shards, size_t shard) {
  PCLEAN_CHECK(num_shards > 0);
  PCLEAN_CHECK(shard < num_shards);
  // Balanced split: the first (num_items % num_shards) shards get one
  // extra item, so sizes differ by at most one.
  size_t base = num_items / num_shards;
  size_t extra = num_items % num_shards;
  size_t begin = shard * base + std::min(shard, extra);
  size_t end = begin + base + (shard < extra ? 1 : 0);
  return ShardRange{begin, end};
}

Status ParallelFor(
    size_t num_items, size_t num_shards, const ExecutionOptions& options,
    const std::function<Status(size_t shard, size_t begin, size_t end)>& fn) {
  if (num_items == 0) return Status::OK();
  size_t shards = std::max<size_t>(1, std::min(num_shards, num_items));
  size_t threads = std::min(options.EffectiveThreads(), shards);

  if (threads <= 1 || shards == 1) {
    for (size_t s = 0; s < shards; ++s) {
      ShardRange range = ShardBounds(num_items, shards, s);
      PCLEAN_RETURN_NOT_OK(fn(s, range.begin, range.end));
    }
    return Status::OK();
  }

  // Exactly `threads` runners drain an atomic shard counter; the caller
  // is one of them, so progress is guaranteed even when the shared pool
  // is saturated (runners never block on other tasks).
  std::vector<Status> statuses(shards);
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  auto runner = [&] {
    for (;;) {
      size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards || failed.load(std::memory_order_relaxed)) return;
      ShardRange range = ShardBounds(num_items, shards, s);
      Status st = fn(s, range.begin, range.end);
      if (!st.ok()) {
        statuses[s] = std::move(st);
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = threads - 1;
  for (size_t t = 0; t + 1 < threads; ++t) {
    ThreadPool::Default()->Schedule([&] {
      runner();
      // Notify while holding the lock: the caller cannot return from its
      // wait (and destroy done_cv, which lives on its stack) until the
      // lock is released, so the notify always targets a live condvar.
      std::lock_guard<std::mutex> lock(done_mu);
      --pending;
      done_cv.notify_one();
    });
  }
  runner();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }

  for (size_t s = 0; s < shards; ++s) {
    if (!statuses[s].ok()) return statuses[s];
  }
  return Status::OK();
}

}  // namespace privateclean
