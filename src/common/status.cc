#include "common/status.h"

namespace privateclean {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace privateclean
