#ifndef PRIVATECLEAN_COMMON_RANDOM_H_
#define PRIVATECLEAN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privateclean {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every randomized component in PrivateClean (mechanisms, generators,
/// experiment harnesses) takes an explicit `Rng&` so that all behaviour is
/// reproducible from a seed. The generator is cheap to construct and copy;
/// distinct seeds yield independent-looking streams via SplitMix64 seeding.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformIntRange(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1) with 53 bits of precision.
  double UniformReal();

  /// Uniform real in [lo, hi).
  double UniformRealRange(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Sample from the Laplace distribution with location `mu` and scale `b`.
  /// Requires b >= 0 (b == 0 returns mu exactly).
  double Laplace(double mu, double b);

  /// Sample from a standard normal via Box-Muller (used by data
  /// generators, not by the privacy mechanisms).
  double Gaussian(double mu, double sigma);

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derives a new independent generator from this one's stream, for
  /// handing to sub-components without correlating their draws.
  Rng Fork();

  /// Forks `count` child generators off this one's stream, in index
  /// order. This is the stream-assignment scheme of every deterministic
  /// parallel loop (shard-indexed forking in ApplyGrr, replicate-indexed
  /// forking in the bootstrap): stream i is fully determined by this
  /// generator's state and i, never by which worker thread consumes it,
  /// so parallel output is bit-identical at any thread count.
  std::vector<Rng> ForkStreams(size_t count);

 private:
  uint64_t s_[4];
};

/// Zipfian sampler over ranks {0, 1, ..., n-1} with exponent `z`:
/// P(k) ∝ 1 / (k+1)^z. z == 0 degenerates to the uniform distribution.
///
/// The CDF is precomputed at construction (O(n)), and sampling is a binary
/// search (O(log n)), matching the synthetic workload generator in the
/// paper's Section 8.2 where both attributes are Zipf-distributed.
class ZipfianSampler {
 public:
  /// Builds the sampler. Requires n >= 1 and z >= 0.
  ZipfianSampler(size_t n, double z);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Analytic probability of rank k (for tests).
  double Pmf(size_t k) const;

  size_t n() const { return n_; }
  double z() const { return z_; }

 private:
  size_t n_;
  double z_;
  std::vector<double> cdf_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_RANDOM_H_
