#ifndef PRIVATECLEAN_COMMON_STATUS_H_
#define PRIVATECLEAN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace privateclean {

/// Error categories used throughout PrivateClean. Mirrors the
/// Arrow/RocksDB convention of a small closed set of codes plus a
/// human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kIOError = 6,
  kInternal = 7,
  /// Stored bytes are unrecoverably damaged: checksum mismatch, torn
  /// write, truncated record. Distinct from kIOError (the device failed
  /// to perform the operation, possibly transiently) and kNotFound (the
  /// artifact was never there): retrying a kDataLoss read cannot help.
  kDataLoss = 8,
  /// A quota or budget is spent: the request is well-formed and the
  /// system is healthy, but admitting it would exceed a hard allowance
  /// (e.g. a tenant's remaining ε). Retrying cannot help until the
  /// allowance is raised.
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Operation outcome for all fallible PrivateClean APIs.
///
/// The project does not use C++ exceptions; every operation that can fail
/// returns a `Status` (or a `Result<T>`, which wraps one). An OK status is
/// represented without allocation, so returning `Status::OK()` on hot paths
/// is free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// Factory helpers, one per non-OK code.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// Builds a status with an arbitrary code — used to re-wrap an error
  /// with added context (e.g. file path and line number) while keeping
  /// its code. A kOk code yields an OK status and drops the message.
  static Status WithCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when `ok()`).
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  std::unique_ptr<State> state_;
};

}  // namespace privateclean

/// Propagates a non-OK Status out of the enclosing function.
#define PCLEAN_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::privateclean::Status _st = (expr);          \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // PRIVATECLEAN_COMMON_STATUS_H_
