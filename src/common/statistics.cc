#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace privateclean {

void RunningMoments::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningMoments::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

Result<double> NormalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    return Status::InvalidArgument("NormalQuantile requires p in (0, 1)");
  }
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step for near-double precision.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

Result<double> ZScoreForConfidence(double level) {
  if (!(level > 0.0 && level < 1.0)) {
    return Status::InvalidArgument(
        "ZScoreForConfidence requires level in (0, 1)");
  }
  return NormalQuantile(0.5 + level / 2.0);
}

Result<double> RelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    return Status::InvalidArgument("RelativeError undefined for truth == 0");
  }
  return std::abs(estimate - truth) / std::abs(truth);
}

Result<double> Mean(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Mean of empty vector");
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.Mean();
}

Result<double> SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return Status::InvalidArgument("SampleVariance needs >= 2 observations");
  }
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.SampleVariance();
}

Result<double> Median(std::vector<double> xs) {
  if (xs.empty()) return Status::InvalidArgument("Median of empty vector");
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return (lo + hi) / 2.0;
}

Result<double> ChiSquaredStatistic(const std::vector<double>& observed,
                                   const std::vector<double>& expected) {
  if (observed.empty() || observed.size() != expected.size()) {
    return Status::InvalidArgument(
        "ChiSquaredStatistic needs equal-length non-empty vectors");
  }
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (!(expected[i] > 0.0)) {
      return Status::InvalidArgument(
          "ChiSquaredStatistic requires positive expected counts");
    }
    double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

Result<double> ChiSquaredQuantile(size_t df, double p) {
  if (df == 0) {
    return Status::InvalidArgument("ChiSquaredQuantile requires df >= 1");
  }
  if (!(p > 0.0 && p < 1.0)) {
    return Status::InvalidArgument("ChiSquaredQuantile requires p in (0, 1)");
  }
  // Wilson–Hilferty: (X/df)^(1/3) is approximately normal with mean
  // 1 - 2/(9 df) and variance 2/(9 df).
  PCLEAN_ASSIGN_OR_RETURN(double z, NormalQuantile(p));
  double k = static_cast<double>(df);
  double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

Result<double> KolmogorovSmirnovStatistic(
    std::vector<double> samples, const std::function<double(double)>& cdf) {
  if (samples.empty()) {
    return Status::InvalidArgument(
        "KolmogorovSmirnovStatistic of empty sample");
  }
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double f = cdf(samples[i]);
    // The empirical CDF jumps from i/n to (i+1)/n at samples[i]; the sup
    // distance is attained at one side of some jump.
    d = std::max(d, std::abs(f - static_cast<double>(i) / n));
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
  }
  return d;
}

Result<double> Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileOfSorted(xs, p);
}

Result<double> PercentileOfSorted(const std::vector<double>& sorted_xs,
                                  double p) {
  if (sorted_xs.empty()) {
    return Status::InvalidArgument("Percentile of empty vector");
  }
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("Percentile requires p in [0, 100]");
  }
  if (sorted_xs.size() == 1) return sorted_xs[0];
  double rank = (p / 100.0) * static_cast<double>(sorted_xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

Result<PercentileEndpoints> PercentilePair(std::vector<double> xs,
                                           double p_lo, double p_hi) {
  std::sort(xs.begin(), xs.end());
  PercentileEndpoints endpoints;
  PCLEAN_ASSIGN_OR_RETURN(endpoints.lo, PercentileOfSorted(xs, p_lo));
  PCLEAN_ASSIGN_OR_RETURN(endpoints.hi, PercentileOfSorted(xs, p_hi));
  return endpoints;
}

}  // namespace privateclean
