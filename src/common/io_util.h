#ifndef PRIVATECLEAN_COMMON_IO_UTIL_H_
#define PRIVATECLEAN_COMMON_IO_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace privateclean {
namespace io {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// used by the release MANIFEST. Software table implementation; the
/// release files are small enough that hardware CRC is not worth a
/// dependency.
uint32_t Crc32c(std::string_view data);
/// Incremental form: extends `crc` (a previous Crc32c result) with more
/// bytes, so a file can be checksummed in chunks.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// Formats a CRC as fixed-width lowercase hex (8 digits) and parses it
/// back; the MANIFEST stores checksums in this form.
std::string Crc32cToHex(uint32_t crc);
Result<uint32_t> Crc32cFromHex(std::string_view hex);

/// Reads a whole file. Typed failures:
///   NotFound — the file does not exist;
///   IOError  — the open/read failed (possibly transiently);
/// Failpoint sites: io.read.open, io.read.transient, io.read.bitflip,
/// io.read.truncate.
Result<std::string> ReadFileToString(const std::string& path);

/// Bounded retry with exponential backoff around ReadFileToString.
/// Only IOError is retried — NotFound and DataLoss are permanent, and a
/// checksum mismatch is detected by the caller, not here.
///
/// Backoff uses *full jitter* (AWS-style): each sleep is drawn uniformly
/// from [0, cap], where the cap doubles per attempt from
/// `initial_backoff_ms`. Jitter decorrelates retry storms when many
/// readers (release opens, WAL recovery replays) hit the same transient
/// fault together. Total sleep across all attempts is additionally
/// bounded by `max_total_backoff_ms`: once the budget is spent, the next
/// failure is final even if attempts remain.
struct RetryOptions {
  int max_attempts = 4;
  /// First backoff cap; doubles per attempt (1, 2, 4 ms caps by default,
  /// so a fully failing read costs < 10 ms even un-jittered).
  int initial_backoff_ms = 1;
  /// Hard ceiling on the summed sleep across every retry of one call.
  int max_total_backoff_ms = 100;
  /// Seed of the jitter stream; a fixed seed makes the sleep sequence
  /// deterministic. 0 disables jitter (sleeps the full cap each time).
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
  /// Test hook: invoked instead of sleeping when set, with the sleep
  /// duration in ms. Lets a unit test count and measure sleeps without
  /// wall-clock delay.
  std::function<void(int)> sleep_fn;
};
Result<std::string> ReadFileWithRetry(const std::string& path,
                                      const RetryOptions& retry = {});

/// Writes a whole file and fsyncs it before returning OK, so a
/// subsequent directory rename publishes fully-persisted bytes.
/// Failpoint sites: io.write.open, io.write.short, io.write.enospc,
/// io.write.fsync.
Status WriteFileDurable(const std::string& path, std::string_view data);

/// Appends bytes to `path` (creating it if absent) WITHOUT fsync. The
/// write-ahead-log building block: a group commit appends many frames,
/// then makes the batch durable with one FsyncFile. Callers that need
/// fault injection wrap the call in their own failpoint sites (see
/// privacy/ledger.cc); this function itself is deliberately uninstrumented
/// so ledger faults and release faults stay independently addressable.
Status AppendFile(const std::string& path, std::string_view data);

/// Fsyncs a regular file by path (open + fsync + close): the durability
/// barrier of a group commit batch appended with AppendFile.
Status FsyncFile(const std::string& path);

/// Fsyncs a directory so entries created/renamed inside it are durable.
/// Failpoint site: io.fsync.dir.
Status FsyncDir(const std::string& path);

}  // namespace io
}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_IO_UTIL_H_
