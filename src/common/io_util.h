#ifndef PRIVATECLEAN_COMMON_IO_UTIL_H_
#define PRIVATECLEAN_COMMON_IO_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace privateclean {
namespace io {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// used by the release MANIFEST. Software table implementation; the
/// release files are small enough that hardware CRC is not worth a
/// dependency.
uint32_t Crc32c(std::string_view data);
/// Incremental form: extends `crc` (a previous Crc32c result) with more
/// bytes, so a file can be checksummed in chunks.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// Formats a CRC as fixed-width lowercase hex (8 digits) and parses it
/// back; the MANIFEST stores checksums in this form.
std::string Crc32cToHex(uint32_t crc);
Result<uint32_t> Crc32cFromHex(std::string_view hex);

/// Reads a whole file. Typed failures:
///   NotFound — the file does not exist;
///   IOError  — the open/read failed (possibly transiently);
/// Failpoint sites: io.read.open, io.read.transient, io.read.bitflip,
/// io.read.truncate.
Result<std::string> ReadFileToString(const std::string& path);

/// Bounded retry with exponential backoff around ReadFileToString.
/// Only IOError is retried — NotFound and DataLoss are permanent, and a
/// checksum mismatch is detected by the caller, not here.
struct RetryOptions {
  int max_attempts = 4;
  /// First backoff; doubles per attempt (1, 2, 4 ms by default, so a
  /// fully failing read costs < 10 ms).
  int initial_backoff_ms = 1;
};
Result<std::string> ReadFileWithRetry(const std::string& path,
                                      const RetryOptions& retry = {});

/// Writes a whole file and fsyncs it before returning OK, so a
/// subsequent directory rename publishes fully-persisted bytes.
/// Failpoint sites: io.write.open, io.write.short, io.write.enospc,
/// io.write.fsync.
Status WriteFileDurable(const std::string& path, std::string_view data);

/// Fsyncs a directory so entries created/renamed inside it are durable.
/// Failpoint site: io.fsync.dir.
Status FsyncDir(const std::string& path);

}  // namespace io
}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_IO_UTIL_H_
