#ifndef PRIVATECLEAN_COMMON_RESULT_H_
#define PRIVATECLEAN_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace privateclean {

/// Value-or-error return type (Arrow-style `Result<T>`).
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the
/// value of an errored result aborts the process, so callers must check
/// `ok()` (or use `PCLEAN_ASSIGN_OR_RETURN`) before dereferencing.
template <typename T>
class Result {
 public:
  /// Constructs a result carrying `value`. Intentionally implicit so
  /// `return value;` works in functions returning `Result<T>`.
  Result(T value) : state_(std::move(value)) {}

  /// Constructs an errored result from a non-OK status. Implicit so
  /// `return Status::InvalidArgument(...)` works. Passing an OK status is
  /// a programming error and aborts.
  Result(Status status) : state_(std::move(status)) {
    if (std::get<Status>(state_).ok()) {
      std::abort();  // A Result must hold either a value or a real error.
    }
  }

  Result(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Borrows the value. Aborts if `!ok()`.
  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return std::get<T>(state_);
  }
  /// Moves the value out. Aborts if `!ok()`.
  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace privateclean

#define PCLEAN_CONCAT_IMPL_(a, b) a##b
#define PCLEAN_CONCAT_(a, b) PCLEAN_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise moves the value into `lhs`.
///
///   PCLEAN_ASSIGN_OR_RETURN(Table t, Csv::Read(path));
#define PCLEAN_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PCLEAN_ASSIGN_OR_RETURN_IMPL_(                                         \
      PCLEAN_CONCAT_(_pclean_result_, __LINE__), lhs, rexpr)

#define PCLEAN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#endif  // PRIVATECLEAN_COMMON_RESULT_H_
