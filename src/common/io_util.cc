#include "common/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/failpoint.h"
#include "common/random.h"

namespace privateclean {
namespace io {

namespace {

/// Byte-at-a-time CRC32C table for the reflected Castagnoli polynomial.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      (*t)[i] = crc;
    }
    return t;
  }();
  return *table;
}

std::string ErrnoMessage() {
  return std::strerror(errno);
}

/// RAII file descriptor so every early return closes the file.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const auto& table = Crc32cTable();
  crc = ~crc;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

std::string Crc32cToHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

Result<uint32_t> Crc32cFromHex(std::string_view hex) {
  if (hex.size() != 8) {
    return Status::InvalidArgument("CRC32C hex must be 8 digits, got '" +
                                   std::string(hex) + "'");
  }
  uint32_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("bad CRC32C hex digit in '" +
                                     std::string(hex) + "'");
    }
  }
  return value;
}

Result<std::string> ReadFileToString(const std::string& path) {
  PCLEAN_FAILPOINT("io.read.open", path);
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (f.fd < 0) {
    if (errno == ENOENT || errno == ENOTDIR) {
      return Status::NotFound("'" + path + "' not found");
    }
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + ErrnoMessage());
  }
  PCLEAN_FAILPOINT("io.read.transient", path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(f.fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("failed reading '" + path + "' at byte " +
                             std::to_string(data.size()) + ": " +
                             ErrnoMessage());
    }
    data.append(buf, static_cast<size_t>(n));
  }
  PCLEAN_FAILPOINT_DATA("io.read.bitflip", &data);
  PCLEAN_FAILPOINT_DATA("io.read.truncate", &data);
  return data;
}

Result<std::string> ReadFileWithRetry(const std::string& path,
                                      const RetryOptions& retry) {
  Status last;
  Rng jitter(retry.jitter_seed == 0 ? 1 : retry.jitter_seed);
  int cap_ms = retry.initial_backoff_ms;
  int slept_ms = 0;
  int attempts = 0;
  for (int attempt = 1;; ++attempt) {
    auto result = ReadFileToString(path);
    attempts = attempt;
    // Only IOError is plausibly transient; everything else (incl. the
    // value itself) is final.
    if (result.ok() || !result.status().IsIOError()) return result;
    last = result.status();
    if (attempt >= retry.max_attempts) break;
    // Full jitter: sleep uniform in [0, cap], never past the total
    // budget. A spent budget ends the retry loop early — waiting longer
    // than the budget cannot be cheaper than failing over.
    int remaining_ms = retry.max_total_backoff_ms - slept_ms;
    if (remaining_ms <= 0) break;
    int sleep_ms = std::min(cap_ms, remaining_ms);
    if (retry.jitter_seed != 0 && sleep_ms > 0) {
      sleep_ms = static_cast<int>(
          jitter.UniformInt(static_cast<uint64_t>(sleep_ms) + 1));
    }
    slept_ms += sleep_ms;
    if (retry.sleep_fn) {
      retry.sleep_fn(sleep_ms);
    } else if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (cap_ms <= (1 << 30)) cap_ms *= 2;
  }
  return Status::IOError(last.message() + " (after " +
                         std::to_string(attempts) + " attempts)");
}

Status WriteFileDurable(const std::string& path, std::string_view data) {
  PCLEAN_FAILPOINT("io.write.open", path);
  Fd f;
  f.fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644);
  if (f.fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for writing: " + ErrnoMessage());
  }

  std::string_view payload = data;
#if defined(PCLEAN_FAILPOINTS_ENABLED)
  // A short write silently drops the tail — the caller sees OK and only
  // a checksum on read can catch it. Copy so the fault cannot leak back
  // into the caller's buffer.
  std::string mutated(data);
  PCLEAN_FAILPOINT_DATA("io.write.short", &mutated);
  payload = mutated;
  // ENOSPC-style failure: persist a partial prefix, then report the
  // error, leaving a torn file behind for the reader to detect.
  {
    Status enospc = failpoint::Hit("io.write.enospc", path);
    if (!enospc.ok()) {
      std::string_view prefix = payload.substr(0, payload.size() / 2);
      while (!prefix.empty()) {
        ssize_t n = ::write(f.fd, prefix.data(), prefix.size());
        if (n <= 0) break;
        prefix.remove_prefix(static_cast<size_t>(n));
      }
      return enospc;
    }
  }
#endif

  std::string_view rest = payload;
  while (!rest.empty()) {
    ssize_t n = ::write(f.fd, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("failed writing '" + path + "' at byte " +
                             std::to_string(payload.size() - rest.size()) +
                             ": " + ErrnoMessage());
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  PCLEAN_FAILPOINT("io.write.fsync", path);
  if (::fsync(f.fd) != 0) {
    return Status::IOError("fsync failed for '" + path +
                           "': " + ErrnoMessage());
  }
  return Status::OK();
}

Status AppendFile(const std::string& path, std::string_view data) {
  Fd f;
  f.fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                0644);
  if (f.fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for appending: " + ErrnoMessage());
  }
  std::string_view rest = data;
  while (!rest.empty()) {
    ssize_t n = ::write(f.fd, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("failed appending to '" + path + "' at byte " +
                             std::to_string(data.size() - rest.size()) +
                             ": " + ErrnoMessage());
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status FsyncFile(const std::string& path) {
  Fd f;
  f.fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (f.fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + ErrnoMessage());
  }
  if (::fsync(f.fd) != 0) {
    return Status::IOError("fsync failed for '" + path +
                           "': " + ErrnoMessage());
  }
  return Status::OK();
}

Status FsyncDir(const std::string& path) {
  PCLEAN_FAILPOINT("io.fsync.dir", path);
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (f.fd < 0) {
    return Status::IOError("cannot open directory '" + path +
                           "' for fsync: " + ErrnoMessage());
  }
  if (::fsync(f.fd) != 0) {
    return Status::IOError("fsync failed for directory '" + path +
                           "': " + ErrnoMessage());
  }
  return Status::OK();
}

}  // namespace io
}  // namespace privateclean
