#ifndef PRIVATECLEAN_COMMON_ARENA_H_
#define PRIVATECLEAN_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace privateclean {

namespace internal {
struct ArenaSiteCounters;  // Registry node; defined in arena.cc.
}  // namespace internal

/// Aggregate allocation counters for one arena call site (the `site` tag
/// passed to the Arena constructor). All counters are cumulative across
/// every arena created with the tag; `live_bytes` drops when an arena is
/// destroyed or Reset, and `peak_live_bytes` records the high-water mark.
struct ArenaSiteStats {
  std::string site;
  uint64_t alloc_calls = 0;      ///< Number of Allocate/CopyString calls.
  uint64_t alloc_bytes = 0;      ///< Sum of requested bytes (pre-rounding).
  uint64_t reserved_bytes = 0;   ///< Chunk bytes currently held from malloc.
  uint64_t live_bytes = 0;       ///< Requested bytes currently live.
  uint64_t peak_live_bytes = 0;  ///< High-water mark of live_bytes.
};

/// Process-wide registry of per-call-site arena statistics, in the style
/// of a malloc-shim profiler: every Arena registers under its `site` tag
/// and streams its allocation traffic into the tag's counters. Snapshot()
/// is what `QueryResult::memory` and `scripts/bench.sh` surface.
class ArenaProfiler {
 public:
  /// Stats for every site that has ever allocated, sorted by site name
  /// (deterministic output for goldens and bench JSON).
  static std::vector<ArenaSiteStats> Snapshot();

  /// Sum over all sites. Per-site peaks need not coincide in time, so
  /// the summed peak is an upper bound on the true process peak.
  static ArenaSiteStats Totals();

  /// Stats for one site; zeroes if the site never allocated.
  static ArenaSiteStats ForSite(std::string_view site);
};

/// Chunked bump allocator for table construction: string dictionary
/// bytes, scratch buffers, and other allocations whose lifetime matches
/// the owning table. Pointers returned by Allocate/CopyString are stable
/// for the arena's lifetime (chunks are never reallocated or compacted),
/// which is what lets StringDictionary hand out `string_view`s into the
/// arena as the canonical value representation.
///
/// Thread-safety: an Arena is single-writer. Concurrent readers of
/// previously returned pointers are safe; concurrent Allocate calls are
/// not. The profiler counters behind it are atomic, so arenas tagged
/// with the same site may allocate from different threads.
class Arena {
 public:
  /// `site` tags this arena's traffic in the ArenaProfiler. Registration
  /// interns the tag, so dynamic strings are fine.
  explicit Arena(const char* site);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Returns `size` bytes aligned to `align` (a power of two). size == 0
  /// returns a non-null pointer.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s);

  /// Frees every chunk and returns the arena to its freshly-constructed
  /// state. Previously returned pointers are invalidated.
  void Reset();

  /// Requested bytes currently live in this arena.
  size_t bytes_used() const { return bytes_used_; }
  /// Chunk bytes currently held from the system allocator.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Allocation calls served by this arena.
  size_t alloc_count() const { return alloc_count_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  static constexpr size_t kMinChunkBytes = 4096;
  static constexpr size_t kMaxChunkBytes = size_t{1} << 20;

  char* AllocateSlow(size_t size, size_t align);
  void ReleaseAccounting();

  internal::ArenaSiteCounters* counters_;  // Owned by the registry.
  std::vector<Chunk> chunks_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t alloc_count_ = 0;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_ARENA_H_
