#ifndef PRIVATECLEAN_COMMON_THREAD_POOL_H_
#define PRIVATECLEAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace privateclean {

/// Execution knobs for parallelizable operations (GRR randomization,
/// predicate scans, conjunctive quadrant counts). Plumbed through
/// `GrrOptions` and `QueryOptions` down to `ParallelFor`.
///
/// Thread count never affects results: work is split into shards whose
/// layout depends only on the input size (see ShardCountForRows), and any
/// per-shard randomness is forked by shard index, so a fixed seed yields
/// bit-identical output at 1, 2, or 64 threads.
struct ExecutionOptions {
  /// Worker threads to use. 1 (the default) runs inline on the calling
  /// thread; 0 means "use the hardware concurrency".
  size_t num_threads = 1;

  /// `num_threads` with 0 resolved to the hardware concurrency (>= 1).
  size_t EffectiveThreads() const;
};

/// Fixed-size task-queue thread pool (Arrow-style: no exceptions; tasks
/// are void closures and report failure through out-of-band state).
///
/// Most callers never construct one: `ParallelFor` runs shards on the
/// shared `ThreadPool::Default()` pool and caps its own concurrency, so
/// independent operations can share the process's threads.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for execution on some worker thread.
  void Schedule(std::function<void()> task);

  /// Process-wide shared pool, lazily created with one worker per
  /// hardware thread. Never destroyed (intentionally leaked so tasks
  /// scheduled during static destruction cannot race teardown).
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Rows per shard for row-partitioned parallel loops. The shard layout —
/// and therefore any shard-indexed RNG forking and per-shard merge order —
/// is a function of the item count alone, never of the thread count.
inline constexpr size_t kRowsPerShard = 16384;

/// Number of shards for `num_rows` items at the default granularity:
/// ceil(num_rows / kRowsPerShard), and at least 1.
size_t ShardCountForRows(size_t num_rows);

/// Bytes per chunk for byte-partitioned split loops (the speculative-split
/// CSV record parser). Like kRowsPerShard, the chunk layout is a function
/// of the byte count alone, never of the thread count.
inline constexpr size_t kBytesPerSplitChunk = 64 * 1024;

/// Number of chunks for `num_bytes` bytes at `bytes_per_chunk` granularity
/// (0 picks kBytesPerSplitChunk): ceil(num_bytes / bytes_per_chunk), and at
/// least 1.
size_t ChunkCountForBytes(size_t num_bytes, size_t bytes_per_chunk = 0);

/// Shard-count cap for coarse-grained items, where one *item* is itself a
/// full pass over the data (e.g. one bootstrap replicate resampling all S
/// rows). Row-granularity sharding would put thousands of such items in
/// one shard; instead each item gets its own shard up to this cap, after
/// which items group into contiguous ranges so per-shard scratch buffers
/// amortize across the shard's items.
inline constexpr size_t kMaxCoarseShards = 64;

/// Number of shards for `num_items` coarse items:
/// min(num_items, kMaxCoarseShards), and at least 1. Like
/// ShardCountForRows, the result is a function of the item count alone —
/// never the thread count — so shard-indexed state stays deterministic.
size_t ShardCountForCoarseItems(size_t num_items);

/// Half-open item range [begin, end) of shard `shard` when `num_items`
/// items are split into `num_shards` contiguous, balanced shards.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};
ShardRange ShardBounds(size_t num_items, size_t num_shards, size_t shard);

/// Runs `fn(shard, begin, end)` for every shard of [0, num_items) split
/// into `num_shards` contiguous ranges, using at most
/// `options.EffectiveThreads()` threads (borrowed from
/// `ThreadPool::Default()`; the calling thread participates).
///
/// Status-propagating: if any shard fails, the loop stops claiming new
/// shards and the failure with the lowest shard index among those that
/// ran is returned. Shards already in flight complete. With one thread
/// (the default) shards run inline in increasing index order.
Status ParallelFor(
    size_t num_items, size_t num_shards, const ExecutionOptions& options,
    const std::function<Status(size_t shard, size_t begin, size_t end)>& fn);

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_THREAD_POOL_H_
