#ifndef PRIVATECLEAN_COMMON_CHECK_H_
#define PRIVATECLEAN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check. Unlike Status returns (which report *caller*
/// mistakes and recoverable conditions), a failed PCLEAN_CHECK indicates a
/// bug inside PrivateClean itself and aborts.
#define PCLEAN_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "PCLEAN_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#endif  // PRIVATECLEAN_COMMON_CHECK_H_
