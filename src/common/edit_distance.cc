#include "common/edit_distance.h"

#include <algorithm>
#include <vector>

namespace privateclean {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string.
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t del = row[j] + 1;
      size_t ins = row[j - 1] + 1;
      size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
    }
  }
  return row[b.size()];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t limit) {
  if (a.size() < b.size()) std::swap(a, b);
  // Length difference is a lower bound on the distance.
  if (a.size() - b.size() > limit) return limit + 1;
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    size_t row_min = row[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t del = row[j] + 1;
      size_t ins = row[j - 1] + 1;
      size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > limit) return limit + 1;  // Whole band exceeded the limit.
  }
  return std::min(row[b.size()], limit + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace privateclean
