#ifndef PRIVATECLEAN_COMMON_STATISTICS_H_
#define PRIVATECLEAN_COMMON_STATISTICS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"

namespace privateclean {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the query engine and the
/// experiment harnesses to compute sample moments in a single pass.
class RunningMoments {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  size_t count() const { return count_; }

  /// Sample mean; 0 if empty.
  double Mean() const;

  /// Population variance (divide by n); 0 if fewer than 1 observation.
  double PopulationVariance() const;

  /// Sample variance (divide by n-1); 0 if fewer than 2 observations.
  double SampleVariance() const;

  /// Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningMoments& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided symmetric confidence interval [lo, hi] around an estimate.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  double Width() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
};

/// Standard normal cumulative distribution function Φ(x).
double NormalCdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1)
/// (Acklam's rational approximation, |relative error| < 1.15e-9).
Result<double> NormalQuantile(double p);

/// Two-sided z-score for a confidence level in (0, 1):
/// z such that Φ(z) - Φ(-z) = level (e.g. 0.95 -> 1.959964).
Result<double> ZScoreForConfidence(double level);

/// Relative error |estimate - truth| / |truth|. Errors if truth == 0.
Result<double> RelativeError(double estimate, double truth);

/// Mean of a vector; errors if empty.
Result<double> Mean(const std::vector<double>& xs);

/// Sample variance of a vector (n-1 denominator); errors if size < 2.
Result<double> SampleVariance(const std::vector<double>& xs);

/// Median of a vector (copies and partially sorts); errors if empty.
Result<double> Median(std::vector<double> xs);

/// p-th percentile (p in [0,100]) via linear interpolation between order
/// statistics; errors if empty or p out of range.
Result<double> Percentile(std::vector<double> xs, double p);

/// Percentile of an already ascending-sorted vector (same interpolation
/// as Percentile, without the copy-and-sort). The caller is responsible
/// for the sort; errors if empty or p out of range.
Result<double> PercentileOfSorted(const std::vector<double>& sorted_xs,
                                  double p);

/// Both the p_lo-th and p_hi-th percentiles from a single sorted copy of
/// `xs` — the two-endpoint case (e.g. a percentile confidence interval),
/// which would otherwise copy and re-sort the data once per endpoint.
/// Errors if empty or either p is out of [0, 100].
struct PercentileEndpoints {
  double lo = 0.0;
  double hi = 0.0;
};
Result<PercentileEndpoints> PercentilePair(std::vector<double> xs,
                                           double p_lo, double p_hi);

/// Pearson's chi-squared goodness-of-fit statistic
/// Σ (observed_i - expected_i)² / expected_i. The two vectors must have
/// equal, non-zero length and every expected count must be positive.
Result<double> ChiSquaredStatistic(const std::vector<double>& observed,
                                   const std::vector<double>& expected);

/// Upper quantile of the chi-squared distribution with `df` degrees of
/// freedom: x such that P(X <= x) = p, via the Wilson–Hilferty cube
/// approximation (accurate to a few percent for df >= 3, which is enough
/// for pass/fail test thresholds). Errors if df == 0 or p outside (0, 1).
Result<double> ChiSquaredQuantile(size_t df, double p);

/// One-sample Kolmogorov–Smirnov statistic sup_x |F_n(x) - F(x)| of
/// `samples` against a reference CDF evaluated by `cdf`. Errors if
/// `samples` is empty. (Compare against the asymptotic critical value
/// c(α)/√n, e.g. 1.358/√n at α = 0.05.)
Result<double> KolmogorovSmirnovStatistic(
    std::vector<double> samples, const std::function<double(double)>& cdf);

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_STATISTICS_H_
