#include "common/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace privateclean {
namespace failpoint {

namespace {

/// One catalogue entry: the site's name and the fault kind a bare env
/// entry activates. Adding an injection point to the code means adding
/// its site here, which automatically enrolls it in the torture test.
struct SiteInfo {
  const char* name;
  Fault::Kind default_kind;
};

constexpr SiteInfo kCatalogue[] = {
    // Generic file I/O (common/io_util.cc) — every release/CSV byte
    // passes through these.
    {"io.read.open", Fault::Kind::kError},
    {"io.read.transient", Fault::Kind::kError},
    {"io.read.bitflip", Fault::Kind::kBitFlip},
    {"io.read.truncate", Fault::Kind::kTruncate},
    {"io.write.open", Fault::Kind::kError},
    {"io.write.short", Fault::Kind::kShortWrite},
    {"io.write.enospc", Fault::Kind::kError},
    {"io.write.fsync", Fault::Kind::kError},
    {"io.fsync.dir", Fault::Kind::kError},
    // Release directory commit (core/release.cc).
    {"release.commit.rename", Fault::Kind::kError},
    {"release.commit.torn", Fault::Kind::kError},
    {"release.swap.backup", Fault::Kind::kError},
    // Mechanism identity in the MANIFEST (core/release.cc): the render
    // step on write, the `mechanism:` line parse on read. Both sit
    // outside the staged-file loop, so a fault here must leave no
    // partial release behind.
    {"release.mechanism.render", Fault::Kind::kError},
    {"release.mechanism.parse", Fault::Kind::kError},
    // Query / provenance read path: loading a release into a queryable
    // PrivateTable (core/release.cc), the predicate scan every aggregate
    // starts from (query/aggregate.cc), and the provenance-graph build
    // queries trigger lazily (provenance/provenance_graph.cc). All sit at
    // function entry, outside the sharded row loops, per the registry's
    // single-mutex contract.
    {"release.open.relation", Fault::Kind::kError},
    {"query.scan.begin", Fault::Kind::kError},
    {"provenance.graph.build", Fault::Kind::kError},
    // ε-budget ledger (privacy/ledger.cc). The WAL commit path: an error
    // before the frame batch is appended, a short write tearing the
    // batch's tail on disk, and an error between the append and its
    // fsync barrier (the classic lost-durability window).
    {"ledger.wal.append", Fault::Kind::kError},
    {"ledger.wal.short", Fault::Kind::kShortWrite},
    {"ledger.wal.fsync", Fault::Kind::kError},
    // Checkpoint compaction: writing the temp checkpoint, and the atomic
    // rename that commits it.
    {"ledger.ckpt.write", Fault::Kind::kError},
    {"ledger.ckpt.rename", Fault::Kind::kError},
    // Recovery: opening the ledger files, a truncated WAL tail, and a
    // flipped bit mid-log (the data faults hit the recovered bytes, so
    // recovery sees exactly what a torn/corrupt disk would serve).
    {"ledger.recover.open", Fault::Kind::kError},
    {"ledger.recover.torn", Fault::Kind::kTruncate},
    {"ledger.recover.bitflip", Fault::Kind::kBitFlip},
    // `pclean serve` (src/server): admitting a connection, the framed
    // wire protocol (data faults mutate a payload before its length/CRC
    // check, modeling a torn or corrupted connection), and the graceful
    // drain entry.
    {"server.accept", Fault::Kind::kError},
    {"server.frame.read.short", Fault::Kind::kTruncate},
    {"server.frame.read.bitflip", Fault::Kind::kBitFlip},
    {"server.frame.write.short", Fault::Kind::kShortWrite},
    {"server.drain", Fault::Kind::kError},
};

const SiteInfo* FindSite(const std::string& name) {
  for (const SiteInfo& info : kCatalogue) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

/// Registry state. A single mutex is fine: sites sit on file-I/O paths,
/// never inside sharded row loops.
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Fault> active;
  std::unordered_map<std::string, uint64_t> hits;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Registers a fault without touching the env loader. The env-loading
/// path itself activates through this: the loader runs inside a
/// `std::call_once`, and call_once is not reentrant, so if activation
/// called back into EnsureEnvLoaded the first env-driven run would
/// self-deadlock on its own once_flag.
Status ActivateNoEnv(const std::string& site, Fault fault) {
  if (FindSite(site) == nullptr) {
    return Status::InvalidArgument("unknown failpoint site '" + site + "'");
  }
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.active[site] = std::move(fault);
  return Status::OK();
}

/// Applies `PCLEAN_FAILPOINTS` from the environment once, before the
/// first registry access, so CLI runs can inject faults without a test
/// driver. Explicit Activate/Deactivate calls land afterwards and win.
void EnsureEnvLoaded() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* spec = std::getenv("PCLEAN_FAILPOINTS");
    // A malformed env spec is ignored rather than fatal.
    if (spec != nullptr && *spec != '\0') (void)ActivateFromSpec(spec);
  });
}

Status MakeInjected(const char* site, const Fault& fault,
                    const std::string& detail) {
  std::string msg = "failpoint '" + std::string(site) + "'";
  if (!detail.empty()) msg += " at '" + detail + "'";
  msg += ": " + fault.message;
  return Status::WithCode(fault.code, std::move(msg));
}

void ApplyDataFault(const Fault& fault, std::string* data) {
  if (data == nullptr || data->empty()) return;
  size_t cut = fault.offset == static_cast<size_t>(-1) ? data->size() / 2
                                                       : fault.offset;
  switch (fault.kind) {
    case Fault::Kind::kShortWrite:
    case Fault::Kind::kTruncate:
      data->resize(cut < data->size() ? cut : data->size() - 1);
      break;
    case Fault::Kind::kBitFlip: {
      size_t pos = cut < data->size() ? cut : data->size() - 1;
      (*data)[pos] = static_cast<char>((*data)[pos] ^ 0x01);
      break;
    }
    case Fault::Kind::kError:
      break;
  }
}

}  // namespace

bool CompiledIn() {
#if defined(PCLEAN_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

Status Activate(const std::string& site, Fault fault) {
  EnsureEnvLoaded();
  return ActivateNoEnv(site, std::move(fault));
}

void Deactivate(const std::string& site) {
  EnsureEnvLoaded();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.active.erase(site);
}

void DeactivateAll() {
  EnsureEnvLoaded();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.active.clear();
}

const std::vector<std::string>& Sites() {
  static const std::vector<std::string>* sites = [] {
    auto* v = new std::vector<std::string>();
    for (const SiteInfo& info : kCatalogue) v->push_back(info.name);
    return v;
  }();
  return *sites;
}

Fault DefaultFault(const std::string& site) {
  Fault fault;
  if (const SiteInfo* info = FindSite(site)) {
    fault.kind = info->default_kind;
  }
  if (site == "io.write.enospc") {
    fault.message = "injected ENOSPC (no space left on device)";
  }
  return fault;
}

uint64_t Hits(const std::string& site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(site);
  return it == r.hits.end() ? 0 : it->second;
}

void ResetHits() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.hits.clear();
}

Status ActivateFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    std::string site = entry;
    std::string action;
    int count = -1;
    if (size_t colon = site.rfind(':'); colon != std::string::npos) {
      count = std::atoi(site.substr(colon + 1).c_str());
      if (count <= 0) {
        return Status::InvalidArgument("bad failpoint count in '" + entry +
                                       "'");
      }
      site = site.substr(0, colon);
    }
    if (size_t eq = site.find('='); eq != std::string::npos) {
      action = site.substr(eq + 1);
      site = site.substr(0, eq);
    }

    Fault fault = DefaultFault(site);
    fault.remaining = count;
    if (!action.empty()) {
      if (action == "error") {
        fault.kind = Fault::Kind::kError;
        fault.code = StatusCode::kIOError;
      } else if (action == "enospc") {
        fault.kind = Fault::Kind::kError;
        fault.code = StatusCode::kIOError;
        fault.message = "injected ENOSPC (no space left on device)";
      } else if (action == "notfound") {
        fault.kind = Fault::Kind::kError;
        fault.code = StatusCode::kNotFound;
      } else if (action == "exists") {
        fault.kind = Fault::Kind::kError;
        fault.code = StatusCode::kAlreadyExists;
      } else if (action == "short-write") {
        fault.kind = Fault::Kind::kShortWrite;
      } else if (action == "bit-flip") {
        fault.kind = Fault::Kind::kBitFlip;
      } else if (action == "truncate") {
        fault.kind = Fault::Kind::kTruncate;
      } else {
        return Status::InvalidArgument("unknown failpoint action '" +
                                       action + "' in '" + entry + "'");
      }
    }
    PCLEAN_RETURN_NOT_OK(ActivateNoEnv(site, std::move(fault)));
  }
  return Status::OK();
}

Status Hit(const char* site, const std::string& detail) {
  EnsureEnvLoaded();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.hits[site];
  auto it = r.active.find(site);
  if (it == r.active.end() || it->second.kind != Fault::Kind::kError) {
    return Status::OK();
  }
  Fault& fault = it->second;
  if (fault.remaining == 0) return Status::OK();
  if (fault.remaining > 0) --fault.remaining;
  return MakeInjected(site, fault, detail);
}

void HitData(const char* site, std::string* data) {
  EnsureEnvLoaded();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.hits[site];
  auto it = r.active.find(site);
  if (it == r.active.end() || it->second.kind == Fault::Kind::kError) {
    return;
  }
  Fault& fault = it->second;
  if (fault.remaining == 0) return;
  if (fault.remaining > 0) --fault.remaining;
  ApplyDataFault(fault, data);
}

}  // namespace failpoint
}  // namespace privateclean
