#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace privateclean {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer literal");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an int64: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty double literal");
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not a double: '" + std::string(s) + "'");
  }
  return value;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: nearly every double does
  // at 15-17 significant digits, so try those three in order (parsing
  // with from_chars, which is allocation-free).
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    int len = std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double parsed = 0.0;
    auto [ptr, ec] = std::from_chars(buf, buf + len, parsed);
    if (ec == std::errc() && ptr == buf + len && parsed == v) {
      return std::string(buf, static_cast<size_t>(len));
    }
  }
  return buf;  // %.17g always round-trips for finite doubles.
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace privateclean
