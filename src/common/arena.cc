#include "common/arena.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

namespace privateclean {

namespace internal {

/// Counters shared by every arena registered under one site tag.
/// Atomics so same-tag arenas may live on different threads; the peak is
/// maintained with a CAS loop (monotone, so the loop terminates).
struct ArenaSiteCounters {
  std::atomic<uint64_t> alloc_calls{0};
  std::atomic<uint64_t> alloc_bytes{0};
  std::atomic<uint64_t> reserved_bytes{0};
  std::atomic<uint64_t> live_bytes{0};
  std::atomic<uint64_t> peak_live_bytes{0};

  void RecordAlloc(uint64_t bytes) {
    alloc_calls.fetch_add(1, std::memory_order_relaxed);
    alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
    uint64_t live =
        live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_live_bytes.load(std::memory_order_relaxed);
    while (live > peak && !peak_live_bytes.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  void RecordRelease(uint64_t live, uint64_t reserved) {
    live_bytes.fetch_sub(live, std::memory_order_relaxed);
    reserved_bytes.fetch_sub(reserved, std::memory_order_relaxed);
  }
};

}  // namespace internal

namespace {

using internal::ArenaSiteCounters;

/// Site tag -> counters. Ordered map so Snapshot() is sorted by site
/// name without a post-pass. Node addresses are stable, so every Arena
/// caches its counters pointer at construction and never takes the
/// mutex on the allocation path. Leaked intentionally: arenas in static
/// storage may release accounting during shutdown.
std::map<std::string, ArenaSiteCounters, std::less<>>& Registry() {
  static auto* registry =
      new std::map<std::string, ArenaSiteCounters, std::less<>>;
  return *registry;
}

std::mutex& RegistryMutex() {
  static auto* mu = new std::mutex;
  return *mu;
}

ArenaSiteCounters* CountersFor(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  auto it = registry.find(site);
  if (it == registry.end()) {
    it = registry
             .emplace(std::piecewise_construct, std::forward_as_tuple(site),
                      std::forward_as_tuple())
             .first;
  }
  return &it->second;
}

ArenaSiteStats ReadSite(const std::string& name,
                        const ArenaSiteCounters& c) {
  ArenaSiteStats s;
  s.site = name;
  s.alloc_calls = c.alloc_calls.load(std::memory_order_relaxed);
  s.alloc_bytes = c.alloc_bytes.load(std::memory_order_relaxed);
  s.reserved_bytes = c.reserved_bytes.load(std::memory_order_relaxed);
  s.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = c.peak_live_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

std::vector<ArenaSiteStats> ArenaProfiler::Snapshot() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<ArenaSiteStats> out;
  out.reserve(Registry().size());
  for (const auto& [name, counters] : Registry()) {
    out.push_back(ReadSite(name, counters));
  }
  return out;
}

ArenaSiteStats ArenaProfiler::Totals() {
  ArenaSiteStats total;
  total.site = "<all>";
  for (const ArenaSiteStats& s : Snapshot()) {
    total.alloc_calls += s.alloc_calls;
    total.alloc_bytes += s.alloc_bytes;
    total.reserved_bytes += s.reserved_bytes;
    total.live_bytes += s.live_bytes;
    total.peak_live_bytes += s.peak_live_bytes;
  }
  return total;
}

ArenaSiteStats ArenaProfiler::ForSite(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  auto it = registry.find(site);
  if (it == registry.end()) {
    ArenaSiteStats s;
    s.site = std::string(site);
    return s;
  }
  return ReadSite(it->first, it->second);
}

Arena::Arena(const char* site) : counters_(CountersFor(site)) {}

Arena::~Arena() { ReleaseAccounting(); }

Arena::Arena(Arena&& other) noexcept
    : counters_(other.counters_),
      chunks_(std::move(other.chunks_)),
      bytes_used_(other.bytes_used_),
      bytes_reserved_(other.bytes_reserved_),
      alloc_count_(other.alloc_count_) {
  other.chunks_.clear();
  other.bytes_used_ = 0;
  other.bytes_reserved_ = 0;
  other.alloc_count_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    ReleaseAccounting();
    counters_ = other.counters_;
    chunks_ = std::move(other.chunks_);
    bytes_used_ = other.bytes_used_;
    bytes_reserved_ = other.bytes_reserved_;
    alloc_count_ = other.alloc_count_;
    other.chunks_.clear();
    other.bytes_used_ = 0;
    other.bytes_reserved_ = 0;
    other.alloc_count_ = 0;
  }
  return *this;
}

void Arena::ReleaseAccounting() {
  if (bytes_used_ == 0 && bytes_reserved_ == 0) return;
  counters_->RecordRelease(bytes_used_, bytes_reserved_);
  bytes_used_ = 0;
  bytes_reserved_ = 0;
}

void Arena::Reset() {
  ReleaseAccounting();
  chunks_.clear();
  alloc_count_ = 0;
}

void* Arena::Allocate(size_t size, size_t align) {
  ++alloc_count_;
  counters_->RecordAlloc(size);
  bytes_used_ += size;
  if (!chunks_.empty()) {
    Chunk& chunk = chunks_.back();
    // Align the absolute address, not the chunk-relative offset: the
    // chunk base itself is only as aligned as operator new[] made it.
    uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
    uintptr_t bumped = base + chunk.used;
    size_t offset =
        ((bumped + align - 1) & ~(uintptr_t{align} - 1)) - base;
    if (offset + size <= chunk.capacity) {
      chunk.used = offset + size;
      return chunk.data.get() + offset;
    }
  }
  return AllocateSlow(size, align);
}

char* Arena::AllocateSlow(size_t size, size_t align) {
  // Double the chunk size as the arena grows so the chunk count stays
  // logarithmic; oversized requests get a dedicated right-sized chunk.
  size_t capacity =
      chunks_.empty()
          ? kMinChunkBytes
          : std::min(chunks_.back().capacity * 2, kMaxChunkBytes);
  capacity = std::max(capacity, size + align);
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(capacity);
  chunk.capacity = capacity;
  bytes_reserved_ += capacity;
  counters_->reserved_bytes.fetch_add(capacity, std::memory_order_relaxed);
  chunks_.push_back(std::move(chunk));
  Chunk& fresh = chunks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(fresh.data.get());
  size_t offset = ((base + align - 1) & ~(uintptr_t{align} - 1)) - base;
  fresh.used = offset + size;
  return fresh.data.get() + offset;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) {
    // Keep the accounting visible even for empty strings (one call, zero
    // bytes) without burning arena space.
    counters_->RecordAlloc(0);
    ++alloc_count_;
    return std::string_view("", 0);
  }
  char* dst = static_cast<char*>(Allocate(s.size(), /*align=*/1));
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

}  // namespace privateclean
