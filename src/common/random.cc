#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace privateclean {

namespace {

/// SplitMix64: expands a single seed into well-mixed state words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  PCLEAN_CHECK(n > 0);
  // Rejection sampling over the largest multiple of n that fits in 64 bits.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformIntRange(int64_t lo, int64_t hi) {
  PCLEAN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformReal() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformRealRange(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

double Rng::Laplace(double mu, double b) {
  PCLEAN_CHECK(b >= 0.0);
  if (b == 0.0) return mu;
  // Inverse CDF: u uniform in (-0.5, 0.5], x = mu - b*sgn(u)*ln(1-2|u|).
  double u = UniformReal() - 0.5;
  double sign = (u < 0.0) ? -1.0 : 1.0;
  double mag = std::min(std::abs(u) * 2.0, 1.0 - 1e-16);
  return mu - b * sign * std::log(1.0 - mag);
}

double Rng::Gaussian(double mu, double sigma) {
  // Box-Muller with a guard against log(0).
  double u1 = std::max(UniformReal(), 1e-300);
  double u2 = UniformReal();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(Next()); }

std::vector<Rng> Rng::ForkStreams(size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  for (size_t i = 0; i < count; ++i) streams.push_back(Fork());
  return streams;
}

ZipfianSampler::ZipfianSampler(size_t n, double z) : n_(n), z_(z) {
  PCLEAN_CHECK(n >= 1);
  PCLEAN_CHECK(z >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), z);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

size_t ZipfianSampler::Sample(Rng& rng) const {
  double u = rng.UniformReal();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfianSampler::Pmf(size_t k) const {
  PCLEAN_CHECK(k < n_);
  double total = 0.0;
  for (size_t i = 0; i < n_; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), z_);
  }
  return (1.0 / std::pow(static_cast<double>(k + 1), z_)) / total;
}

}  // namespace privateclean
