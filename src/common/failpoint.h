#ifndef PRIVATECLEAN_COMMON_FAILPOINT_H_
#define PRIVATECLEAN_COMMON_FAILPOINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace privateclean {
namespace failpoint {

/// Fault injection for durability testing (RocksDB fail_point style).
///
/// Every fallible step of release/CSV I/O — plus the query/provenance
/// read path (release open, predicate scan, lazy provenance-graph
/// build) — evaluates a *named site* via
/// the `PCLEAN_FAILPOINT*` macros below. A site is inert until a test
/// (or the `PCLEAN_FAILPOINTS` environment variable) activates it with a
/// `Fault`; an active site either injects a typed error Status at that
/// step or mutates the byte buffer flowing through it (short write, bit
/// flip, truncation). The full site catalogue is fixed at compile time
/// (`Sites()`), so a torture test can enumerate and exercise every
/// injection point.
///
/// When the CMake option `PCLEAN_FAILPOINTS` is OFF (the default for
/// Release builds) the macros compile to nothing and the instrumented
/// code paths carry zero overhead; the registry functions still link so
/// tests can detect the configuration via `CompiledIn()`.
///
/// Environment activation: `PCLEAN_FAILPOINTS=site[=action][:count],...`
/// where action is one of `error` (IOError, the default), `enospc`,
/// `notfound`, `exists`, `short-write`, `bit-flip`, `truncate`, and
/// `count` bounds how many hits fire before the site auto-deactivates.
/// Example: `PCLEAN_FAILPOINTS=io.read.transient=error:2` makes the
/// first two reads fail and lets the retry loop succeed on the third.

/// What an activated site does when its code path is reached.
struct Fault {
  enum class Kind {
    /// Return `Status::WithCode(code, ...)` from the site.
    kError,
    /// Write path: silently drop the buffer's tail before it reaches the
    /// file, simulating a short write the device did not report.
    kShortWrite,
    /// Read path: flip one bit of the bytes read.
    kBitFlip,
    /// Read path: drop the tail of the bytes read (truncated file).
    kTruncate,
  };

  Kind kind = Kind::kError;
  /// Code of the injected Status (kError sites).
  StatusCode code = StatusCode::kIOError;
  /// Human-readable cause included in the injected Status message.
  std::string message = "injected fault";
  /// Number of hits that fire before the site deactivates itself;
  /// -1 fires on every hit until `Deactivate`.
  int remaining = -1;
  /// Byte position for data faults (cut point for kShortWrite/kTruncate,
  /// byte whose lowest bit flips for kBitFlip). SIZE_MAX = buffer middle.
  size_t offset = static_cast<size_t>(-1);
};

/// True when the macros are compiled in (CMake PCLEAN_FAILPOINTS=ON).
bool CompiledIn();

/// Activates `site` with `fault`. InvalidArgument for names outside the
/// catalogue, so typos in tests and env specs fail loudly.
Status Activate(const std::string& site, Fault fault);

/// Deactivates one site / all sites. Hit counters are unaffected.
void Deactivate(const std::string& site);
void DeactivateAll();

/// The compile-time catalogue of every injection site, in a stable order.
const std::vector<std::string>& Sites();

/// The fault a bare `site` (no `=action`) env entry activates — kError
/// for status sites, the matching data fault for buffer sites.
Fault DefaultFault(const std::string& site);

/// Times `site` was reached (active or not) since the last `ResetHits`.
/// Counted only when compiled in; the torture test uses this to prove
/// every catalogued site actually sits on the exercised I/O paths.
uint64_t Hits(const std::string& site);
void ResetHits();

/// Parses and applies a `site[=action][:count]` spec list (the
/// `PCLEAN_FAILPOINTS` grammar). Entries separated by ',' or ';'.
Status ActivateFromSpec(const std::string& spec);

/// Implementation hooks for the macros — not for direct use.
/// `Hit` returns the injected error if `site` is active with a kError
/// fault; `detail` names the file or directory involved.
Status Hit(const char* site, const std::string& detail);
/// Applies an active data fault to `*data` in place; no-op otherwise.
void HitData(const char* site, std::string* data);

}  // namespace failpoint
}  // namespace privateclean

#if defined(PCLEAN_FAILPOINTS_ENABLED)
/// Evaluates a status site: returns the injected Status from the
/// enclosing function when the site is active.
#define PCLEAN_FAILPOINT(site, detail)                             \
  do {                                                             \
    ::privateclean::Status _pclean_fp =                            \
        ::privateclean::failpoint::Hit((site), (detail));          \
    if (!_pclean_fp.ok()) return _pclean_fp;                       \
  } while (false)
/// Evaluates a data site: mutates `*(buf)` when the site is active.
#define PCLEAN_FAILPOINT_DATA(site, buf) \
  ::privateclean::failpoint::HitData((site), (buf))
#else
#define PCLEAN_FAILPOINT(site, detail) \
  do {                                 \
  } while (false)
#define PCLEAN_FAILPOINT_DATA(site, buf) \
  do {                                   \
  } while (false)
#endif

#endif  // PRIVATECLEAN_COMMON_FAILPOINT_H_
