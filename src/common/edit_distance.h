#ifndef PRIVATECLEAN_COMMON_EDIT_DISTANCE_H_
#define PRIVATECLEAN_COMMON_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace privateclean {

/// Levenshtein edit distance (unit-cost insert/delete/substitute).
/// O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Edit distance with early exit: returns any value > `limit` as soon as
/// the distance provably exceeds `limit` (banded DP). Used by the
/// matching-dependency resolver, whose similarity predicate only needs
/// "distance <= k".
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t limit);

/// Normalized similarity in [0, 1]: 1 - dist / max(|a|, |b|); 1.0 when both
/// strings are empty.
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace privateclean

#endif  // PRIVATECLEAN_COMMON_EDIT_DISTANCE_H_
