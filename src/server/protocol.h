#ifndef PRIVATECLEAN_SERVER_PROTOCOL_H_
#define PRIVATECLEAN_SERVER_PROTOCOL_H_

#include <cstddef>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace privateclean {
namespace server {

/// Wire protocol of `pclean serve`: line-oriented, length-framed,
/// CRC-checked messages over a Unix-domain stream socket.
///
/// One frame is a single header line followed by exactly `len` payload
/// bytes:
///
///   %PCLN <TYPE> <len> <crc32c-hex8>\n<payload>
///
/// where `TYPE` is one of the tokens below, `len` is the payload byte
/// count in decimal, and the CRC32C (the release-MANIFEST checksum,
/// common/io_util.h) covers exactly the payload bytes. The header is
/// ASCII and bounded (kMaxHeaderBytes), so a reader can frame the stream
/// without trusting the peer; the CRC turns a torn or bit-flipped frame
/// into a typed DataLoss instead of a silently-wrong request or answer.
///
/// Conversation (client speaks first):
///
///   HELLO    client -> server   tenant/release binding (RenderHello)
///   WELCOME  server -> client   binding accepted (relation name, rows)
///   QUERY    client -> server   one SQL request (RenderQueryRequest)
///   RESULT   server -> client   rendered result text, byte-identical to
///                               what `pclean query` prints for the same
///                               SQL over the same release
///   ERROR    server -> client   a typed Status (RenderStatusPayload);
///                               the session stays open for query-level
///                               errors and closes after framing errors
///   BYE      client -> server   polite close
///   GOODBYE  server -> client   close notice (drain, idle timeout, BYE)
///
/// Every error that crosses the wire reuses the Status taxonomy
/// (common/status.h): the ERROR payload is `<code-name>\n<message>` and
/// ParseStatusPayload reconstructs the same typed Status on the client,
/// so `ResourceExhausted` from admission control or `DataLoss` from a
/// corrupt release round-trips intact.
///
/// Failpoint sites (common/failpoint.h): `server.frame.read.short` and
/// `server.frame.read.bitflip` mutate a received payload before its
/// length/CRC check (modeling a torn or corrupted connection), and
/// `server.frame.write.short` drops the tail of an outgoing frame so the
/// peer's checksum catches it.

/// Frame type tokens.
enum class FrameType {
  kHello,
  kWelcome,
  kQuery,
  kResult,
  kError,
  kBye,
  kGoodbye,
};

/// Stable wire token for a frame type ("HELLO", "RESULT", ...).
const char* FrameTypeToken(FrameType type);

/// One protocol frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Frames larger than this are refused on both sides of the wire: the
/// reader types them DataLoss before any payload read (a corrupt length
/// field cannot make it allocate or wait for gigabytes), and WriteFrame
/// types them ResourceExhausted before any byte leaves (an oversize
/// RESULT must surface as an answerable error, not as the peer
/// mis-diagnosing a torn frame).
inline constexpr size_t kMaxPayloadBytes = 1 << 20;

/// Upper bound on the header line ("%PCLN GOODBYE 1048576 ffffffff\n").
inline constexpr size_t kMaxHeaderBytes = 64;

/// Serializes a frame (header line + payload).
std::string EncodeFrame(const Frame& frame);

/// Writes one frame to `fd`, looping over partial writes. Failpoint
/// `server.frame.write.short` truncates the encoded bytes first. Typed
/// IOError when the peer is gone (EPIPE/ECONNRESET; SIGPIPE suppressed);
/// typed ResourceExhausted — with nothing sent — when the payload
/// exceeds kMaxPayloadBytes.
Status WriteFrame(int fd, const Frame& frame);

/// Buffered frame reader over a stream socket.
///
/// Read() returns:
///   a Frame          — one complete, CRC-verified frame;
///   std::nullopt     — the peer closed cleanly at a frame boundary;
///   DataLoss         — torn/corrupt frame (bad magic, oversize length,
///                      EOF mid-frame, CRC mismatch). The stream cannot
///                      be re-synchronized after this;
///   IOError          — the read itself failed;
///   OutOfRange       — no bytes arrived within `timeout_ms`
///                      (IsReadTimeout distinguishes it).
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// `timeout_ms < 0` blocks indefinitely. The timeout applies to each
  /// wait for bytes; mid-frame waits use the same bound, so a stalled
  /// peer cannot wedge the reader forever.
  Result<std::optional<Frame>> Read(int timeout_ms = -1);

  /// True for the typed status Read() returns when the timeout lapsed
  /// with no bytes (the idle-session signal).
  static bool IsReadTimeout(const Status& status);

 private:
  /// Appends more bytes from the socket to `buffer_`. Returns the count
  /// read (0 = EOF), or a typed error / timeout status.
  Result<size_t> Fill(int timeout_ms);

  int fd_;
  std::string buffer_;
};

/// --- Typed payload codecs ---------------------------------------------

/// ERROR payload: `<code-name>\n<message>`. The code name is the stable
/// StatusCodeToString rendering; parsing an unknown name yields an
/// Internal status carrying the raw payload rather than dropping it.
std::string RenderStatusPayload(const Status& status);
Status ParseStatusPayload(const std::string& payload);

/// HELLO payload: `tenant=<name>\nrelease=<name>\n` (either line may be
/// empty: an empty tenant is an anonymous session, an empty release
/// binds the server's default release). Names must not contain newlines.
struct HelloRequest {
  std::string tenant;
  std::string release;
};
std::string RenderHello(const HelloRequest& hello);
Result<HelloRequest> ParseHello(const std::string& payload);

/// WELCOME payload: `relation=<name>\nrows=<n>\n`.
struct WelcomeInfo {
  std::string relation;
  uint64_t rows = 0;
};
std::string RenderWelcome(const WelcomeInfo& info);
Result<WelcomeInfo> ParseWelcome(const std::string& payload);

/// QUERY payload: `direct=<0|1> confidence=<ieee754-bits-hex16>\n<sql>`.
/// The confidence travels as the hex of its bit pattern (the ledger-WAL
/// idiom) so the served result is bit-identical to a local `pclean
/// query` at the same confidence.
struct QueryRequest {
  std::string sql;
  bool direct = false;
  double confidence = 0.95;
};
std::string RenderQueryRequest(const QueryRequest& request);
Result<QueryRequest> ParseQueryRequest(const std::string& payload);

}  // namespace server
}  // namespace privateclean

#endif  // PRIVATECLEAN_SERVER_PROTOCOL_H_
