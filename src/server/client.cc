#include "server/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace privateclean {
namespace server {

namespace {

Status ConnectError(const std::string& path) {
  if (errno == ENOENT || errno == ECONNREFUSED) {
    return Status::NotFound("no server at '" + path +
                            "': " + std::strerror(errno));
  }
  return Status::IOError("connect '" + path +
                         "' failed: " + std::strerror(errno));
}

}  // namespace

Client::Client(int fd, WelcomeInfo welcome)
    : fd_(fd), reader_(fd), welcome_(std::move(welcome)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      welcome_(std::move(other.welcome_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    welcome_ = std::move(other.welcome_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& socket_path,
                               const std::string& tenant,
                               const std::string& release) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path '" + socket_path +
                                   "' exceeds the Unix-domain limit");
  }
  std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: " +
                           std::string(std::strerror(errno)));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status status = ConnectError(socket_path);
    ::close(fd);
    return status;
  }
  Client client(fd, WelcomeInfo{});
  HelloRequest hello;
  hello.tenant = tenant;
  hello.release = release;
  PCLEAN_RETURN_NOT_OK(
      WriteFrame(client.fd_, Frame{FrameType::kHello, RenderHello(hello)}));
  PCLEAN_ASSIGN_OR_RETURN(auto reply, client.reader_.Read());
  if (!reply.has_value()) {
    return Status::IOError("server closed during the handshake");
  }
  switch (reply->type) {
    case FrameType::kWelcome: {
      PCLEAN_ASSIGN_OR_RETURN(client.welcome_, ParseWelcome(reply->payload));
      return client;
    }
    case FrameType::kError:
      return ParseStatusPayload(reply->payload);
    case FrameType::kGoodbye:
      return Status::FailedPrecondition("session closed by server: " +
                                        reply->payload);
    default:
      return Status::Internal(std::string("unexpected handshake frame '") +
                              FrameTypeToken(reply->type) + "'");
  }
}

Result<std::string> Client::Query(const QueryRequest& request) {
  PCLEAN_RETURN_NOT_OK(WriteFrame(
      fd_, Frame{FrameType::kQuery, RenderQueryRequest(request)}));
  PCLEAN_ASSIGN_OR_RETURN(auto reply, reader_.Read());
  if (!reply.has_value()) {
    return Status::IOError("connection closed before a reply");
  }
  switch (reply->type) {
    case FrameType::kResult:
      return std::move(reply->payload);
    case FrameType::kError:
      return ParseStatusPayload(reply->payload);
    case FrameType::kGoodbye:
      return Status::FailedPrecondition("session closed by server: " +
                                        reply->payload);
    default:
      return Status::Internal(std::string("unexpected reply frame '") +
                              FrameTypeToken(reply->type) + "'");
  }
}

Result<std::string> Client::Query(const std::string& sql, bool direct,
                                  double confidence) {
  QueryRequest request;
  request.sql = sql;
  request.direct = direct;
  request.confidence = confidence;
  return Query(request);
}

Status Client::Bye() {
  if (fd_ < 0) return Status::OK();
  PCLEAN_RETURN_NOT_OK(WriteFrame(fd_, Frame{FrameType::kBye, ""}));
  // Await the GOODBYE so the server's polite-close path is exercised;
  // anything else (EOF, a late RESULT) still ends the session.
  for (;;) {
    PCLEAN_ASSIGN_OR_RETURN(auto reply, reader_.Read());
    if (!reply.has_value() || reply->type == FrameType::kGoodbye) break;
  }
  ::shutdown(fd_, SHUT_RDWR);
  return Status::OK();
}

}  // namespace server
}  // namespace privateclean
