#ifndef PRIVATECLEAN_SERVER_RELEASE_CACHE_H_
#define PRIVATECLEAN_SERVER_RELEASE_CACHE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/private_table.h"

namespace privateclean {
namespace server {

/// One release opened for serving: the analyst-side PrivateTable plus
/// the identity a session binds to. Immutable once constructed — the
/// server never cleans or mutates a shared table, and the provenance
/// graph of every discrete attribute is built eagerly at open time, so
/// concurrent read-only queries on the one instance never race on the
/// table's lazy graph cache.
struct OpenedRelease {
  std::string dir;
  PrivateTable table;
  /// The MANIFEST `relation:` name the release answers to.
  std::string relation;

  OpenedRelease(std::string dir, PrivateTable table, std::string relation)
      : dir(std::move(dir)),
        table(std::move(table)),
        relation(std::move(relation)) {}
};

/// Refcounted cache of opened releases, keyed by directory.
///
/// N sessions binding the same release share one dictionary-encoded
/// table: Acquire returns a shared_ptr, and the cache holds only a
/// weak_ptr, so a release stays in memory exactly as long as someone
/// (the server's configured set, or a bound session) holds it. When the
/// last reference drops the entry expires and a later Acquire re-opens
/// the directory — release directories are immutable once published
/// (atomic-rename commit), so a re-open observes the same bytes.
///
/// Thread-safe; Acquire may be called concurrently.
class ReleaseCache {
 public:
  /// `exec` shards the open-time CSV parse and the eager provenance
  /// builds; the resulting table is identical at every thread count.
  explicit ReleaseCache(const ExecutionOptions& exec = {}) : exec_(exec) {}

  /// Opens (or shares) the release at `dir`. Typed failures are exactly
  /// OpenRelease's (NotFound / DataLoss / IOError / FailedPrecondition).
  Result<std::shared_ptr<const OpenedRelease>> Acquire(
      const std::string& dir);

  /// Live (non-expired) entries — how many distinct releases are
  /// currently shared. Exposed for tests and the server's drain log.
  size_t live() const;

  /// Total directory opens performed (cache misses); a second Acquire of
  /// a live entry does not increment it.
  uint64_t opens() const;

 private:
  ExecutionOptions exec_;
  mutable std::mutex mu_;
  std::map<std::string, std::weak_ptr<const OpenedRelease>> entries_;
  uint64_t opens_ = 0;
};

}  // namespace server
}  // namespace privateclean

#endif  // PRIVATECLEAN_SERVER_RELEASE_CACHE_H_
