#ifndef PRIVATECLEAN_SERVER_SESSION_H_
#define PRIVATECLEAN_SERVER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "core/private_table.h"
#include "privacy/ledger.h"
#include "server/protocol.h"
#include "server/release_cache.h"

namespace privateclean {
namespace server {

/// Where a session is in its lifecycle.
enum class SessionState {
  /// Connected; the first frame must be HELLO.
  kAwaitHello,
  /// Tenant and release bound; QUERY frames are served.
  kReady,
  /// Drain requested: queued requests are still answered, no new frames
  /// are read, and a GOODBYE follows the last answer.
  kDraining,
  /// Socket closed; the session is inert.
  kClosed,
};

/// Everything a session borrows from its server. All pointers outlive
/// the session (the server tears sessions down before any of them).
struct SessionContext {
  /// Strand scheduling: session work runs as tasks on this pool, at most
  /// one in flight per session, so responses never interleave and a
  /// 1-thread pool serializes all sessions (the benchmark baseline).
  ThreadPool* pool = nullptr;
  /// Budget ledger, or nullptr when the server runs without admission.
  BudgetLedger* ledger = nullptr;
  /// Releases the server opened, keyed by bind name (directory basename).
  const std::map<std::string, std::shared_ptr<const OpenedRelease>>*
      releases = nullptr;
  /// Bind name a HELLO with an empty release resolves to.
  std::string default_release;
  /// Per-query execution threading (QueryOptions::exec). Results are
  /// independent of this; it never affects response bytes.
  ExecutionOptions query_exec;
  /// Close sessions that sit idle (no frame, nothing queued or running)
  /// longer than this. <= 0 disables the timeout.
  int idle_timeout_ms = 0;
  /// Bounded request queue per session: a pipelining client that gets
  /// this far ahead blocks in the socket (reader backpressure) instead
  /// of growing server memory.
  size_t queue_depth = 8;
  /// Invoked exactly once when the session has fully closed (socket shut,
  /// last strand task done). May be invoked from a pool thread.
  std::function<void()> on_closed;
  /// Server-wide counter of answered QUERY frames.
  std::atomic<uint64_t>* queries_served = nullptr;
};

/// One analyst connection: a reader thread that frames the socket and a
/// strand of pool tasks that runs the HELLO → QUERY* → BYE state
/// machine. The reader only parses frames and enqueues; every state
/// transition, query execution, and response write happens on the
/// strand, so per-session processing is strictly ordered even on a
/// many-threaded pool.
///
/// Error containment: a query-level failure (bad SQL, unknown attribute,
/// overdraft) is answered with a typed ERROR frame and the session keeps
/// serving; a framing failure (torn or corrupt frame) is answered with
/// its typed DataLoss and the session closes, because a stream that lost
/// framing cannot be re-synchronized. Neither touches sibling sessions.
class Session {
 public:
  Session(int fd, uint64_t id, SessionContext context);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the reader thread. Call exactly once.
  void Start();

  /// Graceful drain: stop reading, answer what is queued, say GOODBYE.
  /// Idempotent; returns immediately (completion signals via on_closed).
  void BeginDrain();

  /// Hard stop: shuts the socket both ways so reader and peer unblock
  /// immediately. Queued requests are dropped unanswered.
  void Abort();

  uint64_t id() const { return id_; }
  SessionState state() const;
  /// True once on_closed has fired (or been claimed by the firing
  /// party). After this the session schedules no further pool work.
  bool closed() const;

 private:
  /// Reader → strand handoff items. Control items carry the reason the
  /// reader stopped; kFrame carries a verified frame.
  enum class ItemKind { kFrame, kTimeout, kCorrupt, kEof, kReadError, kDrain };
  struct Item {
    ItemKind kind = ItemKind::kFrame;
    Frame frame;
    Status status;
  };

  void ReaderLoop();
  void Enqueue(Item item);
  void SchedulePumpLocked();
  /// One strand task: handle a single item, then reschedule if more are
  /// queued (fairness: a busy session cannot monopolize a pool worker).
  void Pump();
  void Handle(Item item);
  void HandleFrame(Frame frame);
  Status HandleHello(const Frame& frame);
  Status HandleQuery(const Frame& frame);
  /// Sends a typed ERROR frame; write failures close the session.
  void SendError(const Status& status);
  void SendGoodbye(const std::string& reason);
  void Send(const Frame& frame);
  void Close();
  /// The session is finished when the socket is closed, the queue is
  /// empty, no strand task is in flight, and the reader thread has
  /// exited — only then can no party schedule further pool work, which
  /// is what makes it safe for the server to destroy the session after
  /// on_closed. Exactly one caller claims the transition, in the SAME
  /// critical section that flipped the last FinishedLocked condition
  /// (an unlocked gap would let another thread claim, fire on_closed,
  /// and free the session under the first thread), and only that
  /// caller invokes on_closed (outside mu_).
  bool FinishedLocked() const;
  /// Claims the finish if FinishedLocked(); returns the callback the
  /// claimer must invoke after releasing mu_ (null when not finished,
  /// already claimed, or no callback is set). Call with mu_ held.
  std::function<void()> ClaimFinishLocked();

  const uint64_t id_;
  SessionContext context_;
  int fd_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // reader waits here when queue full
  std::deque<Item> queue_;
  bool pump_scheduled_ = false;
  bool draining_ = false;
  bool aborted_ = false;
  bool reader_exited_ = false;
  bool finish_claimed_ = false;
  SessionState state_ = SessionState::kAwaitHello;

  // Strand-only state (touched exclusively inside Handle*).
  std::string tenant_;
  std::shared_ptr<const OpenedRelease> release_;
  bool write_failed_ = false;

  std::thread reader_;
};

}  // namespace server
}  // namespace privateclean

#endif  // PRIVATECLEAN_SERVER_SESSION_H_
