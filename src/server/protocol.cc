#include "server/protocol.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "common/failpoint.h"
#include "common/io_util.h"
#include "common/string_util.h"

namespace privateclean {
namespace server {

namespace {

constexpr char kMagic[] = "%PCLN";

const struct {
  FrameType type;
  const char* token;
} kFrameTokens[] = {
    {FrameType::kHello, "HELLO"},     {FrameType::kWelcome, "WELCOME"},
    {FrameType::kQuery, "QUERY"},     {FrameType::kResult, "RESULT"},
    {FrameType::kError, "ERROR"},     {FrameType::kBye, "BYE"},
    {FrameType::kGoodbye, "GOODBYE"},
};

bool FrameTypeFromToken(std::string_view token, FrameType* type) {
  for (const auto& entry : kFrameTokens) {
    if (token == entry.token) {
      *type = entry.type;
      return true;
    }
  }
  return false;
}

/// Doubles travel as the hex of their IEEE-754 bit pattern (the
/// ledger-WAL idiom), so a confidence level crosses the wire bit-exact.
std::string DoubleBitsHex(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool DoubleFromBitsHex(std::string_view hex, double* v) {
  if (hex.size() != 16) return false;
  uint64_t bits = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<uint64_t>(digit);
  }
  std::memcpy(v, &bits, sizeof *v);
  return true;
}

const char* kTimeoutMessage = "read timed out waiting for a frame";

Status TornFrame(const std::string& why) {
  return Status::DataLoss("torn or corrupt frame: " + why);
}

/// Splits a `key=value` line; empty value is fine, missing '=' is not.
bool KeyValue(std::string_view line, std::string_view key,
              std::string* value) {
  if (line.size() < key.size() + 1 || line.substr(0, key.size()) != key ||
      line[key.size()] != '=') {
    return false;
  }
  *value = std::string(line.substr(key.size() + 1));
  return true;
}

}  // namespace

const char* FrameTypeToken(FrameType type) {
  for (const auto& entry : kFrameTokens) {
    if (entry.type == type) return entry.token;
  }
  return "ERROR";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out = kMagic;
  out += ' ';
  out += FrameTypeToken(frame.type);
  out += ' ';
  out += std::to_string(frame.payload.size());
  out += ' ';
  out += io::Crc32cToHex(io::Crc32c(frame.payload));
  out += '\n';
  out += frame.payload;
  return out;
}

Status WriteFrame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    // The peer's reader refuses oversize frames as DataLoss; catching
    // the overflow before any byte leaves turns "peer tears the session
    // down with a corrupt-frame diagnosis" into a typed, answerable
    // error on the writer's side.
    return Status::ResourceExhausted(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte frame limit");
  }
  std::string bytes = EncodeFrame(frame);
  // A short write here models a connection torn mid-frame: the tail never
  // reaches the peer, whose length/CRC check types it as DataLoss.
  PCLEAN_FAILPOINT_DATA("server.frame.write.short", &bytes);
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as a typed IOError, not
    // a process-killing SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("frame write failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool FrameReader::IsReadTimeout(const Status& status) {
  return status.IsOutOfRange() &&
         status.message().find(kTimeoutMessage) != std::string::npos;
}

Result<size_t> FrameReader::Fill(int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
    if (ready == 0) return Status::OutOfRange(kTimeoutMessage);
    break;
  }
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("frame read failed: " +
                             std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }
}

Result<std::optional<Frame>> FrameReader::Read(int timeout_ms) {
  // Header: everything up to the first '\n', bounded.
  size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      return TornFrame("header exceeds " + std::to_string(kMaxHeaderBytes) +
                       " bytes without a newline");
    }
    PCLEAN_ASSIGN_OR_RETURN(size_t n, Fill(timeout_ms));
    if (n == 0) {
      if (buffer_.empty()) return std::optional<Frame>();  // clean close
      return TornFrame("connection closed mid-header");
    }
  }
  std::string header = buffer_.substr(0, newline);
  std::vector<std::string> parts = Split(header, ' ');
  if (parts.size() != 4 || parts[0] != kMagic) {
    return TornFrame("bad header '" + header + "'");
  }
  Frame frame;
  if (!FrameTypeFromToken(parts[1], &frame.type)) {
    return TornFrame("unknown frame type '" + parts[1] + "'");
  }
  auto len = ParseInt64(parts[2]);
  if (!len.ok() || *len < 0 ||
      static_cast<size_t>(*len) > kMaxPayloadBytes) {
    return TornFrame("bad payload length '" + parts[2] + "'");
  }
  auto expected_crc = io::Crc32cFromHex(parts[3]);
  if (!expected_crc.ok()) {
    return TornFrame("bad payload checksum '" + parts[3] + "'");
  }
  const size_t payload_len = static_cast<size_t>(*len);
  while (buffer_.size() < newline + 1 + payload_len) {
    PCLEAN_ASSIGN_OR_RETURN(size_t n, Fill(timeout_ms));
    if (n == 0) return TornFrame("connection closed mid-payload");
  }
  frame.payload = buffer_.substr(newline + 1, payload_len);
  buffer_.erase(0, newline + 1 + payload_len);
  // A fault here models bytes damaged in flight: the length/CRC checks
  // below must catch both a dropped tail and a flipped bit.
  PCLEAN_FAILPOINT_DATA("server.frame.read.short", &frame.payload);
  PCLEAN_FAILPOINT_DATA("server.frame.read.bitflip", &frame.payload);
  if (frame.payload.size() != payload_len) {
    return TornFrame("payload short: " + std::to_string(frame.payload.size()) +
                     " of " + std::to_string(payload_len) + " bytes");
  }
  if (io::Crc32c(frame.payload) != *expected_crc) {
    return TornFrame("payload checksum mismatch");
  }
  return std::optional<Frame>(std::move(frame));
}

std::string RenderStatusPayload(const Status& status) {
  std::string out = StatusCodeToString(status.code());
  out += '\n';
  out += status.message();
  return out;
}

Status ParseStatusPayload(const std::string& payload) {
  size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    return Status::Internal("unparseable error payload: " + payload);
  }
  std::string name = payload.substr(0, newline);
  std::string message = payload.substr(newline + 1);
  // The closed StatusCode set: match the stable rendered names.
  for (int code = 0; code <= static_cast<int>(StatusCode::kResourceExhausted);
       ++code) {
    StatusCode candidate = static_cast<StatusCode>(code);
    if (name == StatusCodeToString(candidate)) {
      return Status::WithCode(candidate, std::move(message));
    }
  }
  return Status::Internal("unknown status code '" + name + "': " + message);
}

std::string RenderHello(const HelloRequest& hello) {
  return "tenant=" + hello.tenant + "\nrelease=" + hello.release + "\n";
}

Result<HelloRequest> ParseHello(const std::string& payload) {
  std::vector<std::string> lines = Split(payload, '\n');
  if (lines.size() != 3 || !lines[2].empty()) {
    return Status::InvalidArgument("malformed HELLO payload");
  }
  HelloRequest hello;
  if (!KeyValue(lines[0], "tenant", &hello.tenant) ||
      !KeyValue(lines[1], "release", &hello.release)) {
    return Status::InvalidArgument("malformed HELLO payload");
  }
  return hello;
}

std::string RenderWelcome(const WelcomeInfo& info) {
  return "relation=" + info.relation + "\nrows=" + std::to_string(info.rows) +
         "\n";
}

Result<WelcomeInfo> ParseWelcome(const std::string& payload) {
  std::vector<std::string> lines = Split(payload, '\n');
  std::string rows;
  WelcomeInfo info;
  if (lines.size() != 3 || !lines[2].empty() ||
      !KeyValue(lines[0], "relation", &info.relation) ||
      !KeyValue(lines[1], "rows", &rows)) {
    return Status::InvalidArgument("malformed WELCOME payload");
  }
  PCLEAN_ASSIGN_OR_RETURN(int64_t n, ParseInt64(rows));
  if (n < 0) return Status::InvalidArgument("malformed WELCOME payload");
  info.rows = static_cast<uint64_t>(n);
  return info;
}

std::string RenderQueryRequest(const QueryRequest& request) {
  std::string out = "direct=";
  out += request.direct ? '1' : '0';
  out += " confidence=";
  out += DoubleBitsHex(request.confidence);
  out += '\n';
  out += request.sql;
  return out;
}

Result<QueryRequest> ParseQueryRequest(const std::string& payload) {
  size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    return Status::InvalidArgument("malformed QUERY payload: no option line");
  }
  std::string_view options(payload.data(), newline);
  QueryRequest request;
  std::string direct;
  std::string confidence;
  std::vector<std::string> parts = Split(options, ' ');
  if (parts.size() != 2 || !KeyValue(parts[0], "direct", &direct) ||
      !KeyValue(parts[1], "confidence", &confidence) ||
      (direct != "0" && direct != "1") ||
      !DoubleFromBitsHex(confidence, &request.confidence)) {
    return Status::InvalidArgument("malformed QUERY payload option line '" +
                                   std::string(options) + "'");
  }
  request.direct = direct == "1";
  request.sql = payload.substr(newline + 1);
  return request;
}

}  // namespace server
}  // namespace privateclean
