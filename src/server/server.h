#ifndef PRIVATECLEAN_SERVER_SERVER_H_
#define PRIVATECLEAN_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "server/session.h"

namespace privateclean {
namespace server {

/// Configuration of one `pclean serve` daemon.
struct ServerOptions {
  /// Unix-domain socket path the server listens on.
  std::string socket_path;
  /// Release directories to serve, opened read-only at startup. Each is
  /// bound under its directory basename; a HELLO with an empty release
  /// gets the first one. Sessions binding the same release share one
  /// dictionary-encoded table (ReleaseCache).
  std::vector<std::string> release_dirs;
  /// Budget-ledger directory; empty runs the server without admission
  /// control (anonymous sessions only).
  std::string ledger_dir;
  /// Worker threads for session scheduling. Every session is a strand
  /// on this pool (at most one task in flight), so 1 thread serializes
  /// all sessions — the soak benchmark's serial baseline — while N
  /// threads serve up to N sessions concurrently. 0 = one per hardware
  /// thread. Never affects response bytes.
  int pool_threads = 0;
  /// Per-query execution threading (QueryOptions::exec inside a session
  /// task). Also never affects response bytes.
  ExecutionOptions query_exec;
  /// Close sessions idle longer than this; <= 0 disables.
  int idle_timeout_ms = 0;
  /// Bounded per-session request queue (pipelining backpressure).
  size_t queue_depth = 8;
  /// How long Drain() waits for sessions to answer their queues before
  /// aborting the stragglers.
  int drain_grace_ms = 10000;
};

/// The `pclean serve` daemon: accepts analyst connections on a
/// Unix-domain socket and multiplexes their sessions over one shared
/// thread pool against shared read-only releases.
///
/// Lifecycle: Start() binds, listens, opens every release and (if
/// configured) the ledger, then runs the accept loop on its own thread.
/// Drain() is the graceful shutdown: stop accepting, let every live
/// session answer what it has queued, say GOODBYE, wait (bounded by
/// drain_grace_ms), then tear down and unlink the socket. The
/// destructor hard-stops anything Drain() did not get to.
///
/// Teardown ordering is the correctness-critical part: sessions only
/// schedule strand tasks on the pool while live, and a session reports
/// closed only when it can schedule no further work (see
/// Session::FinishedLocked), so the destructor can safely destroy the
/// pool after every session closed, and the sessions after the pool.
class Server {
 public:
  /// Binds and starts serving. Typed failures: InvalidArgument (bad
  /// options, duplicate release basenames, oversize socket path),
  /// FailedPrecondition (another live server owns the socket), IOError
  /// (socket syscalls), plus whatever opening a release or the ledger
  /// returns. A dead socket file left by a crashed server is replaced;
  /// the probe/unlink/bind takeover is serialized across concurrently
  /// starting servers by an flock on `<socket_path>.lock` (the lock
  /// file stays behind — unlinking it would reopen the race).
  /// Failpoint `server.accept` injects accept-time failures; the loop
  /// treats them as transient (that connection is dropped), as are
  /// fd/buffer-exhaustion accept errors (EMFILE and friends).
  static Result<Server> Start(const ServerOptions& options);

  ~Server();
  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& socket_path() const;

  /// Graceful drain (idempotent). Failpoint `server.drain` injects a
  /// typed failure before any teardown; the destructor still hard-stops
  /// cleanly afterwards.
  Status Drain();

  /// Counters for tests and the drain log.
  uint64_t sessions_accepted() const;
  size_t sessions_live() const;
  uint64_t queries_served() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace privateclean

#endif  // PRIVATECLEAN_SERVER_SERVER_H_
