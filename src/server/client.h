#ifndef PRIVATECLEAN_SERVER_CLIENT_H_
#define PRIVATECLEAN_SERVER_CLIENT_H_

#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace privateclean {
namespace server {

/// Synchronous client for one analyst session against `pclean serve`.
/// Used by `pclean query --connect` and the server tests; one Client is
/// one session (HELLO at connect, BYE at close), not thread-safe.
class Client {
 public:
  /// Connects to the socket and completes the HELLO/WELCOME handshake.
  /// An ERROR reply to the HELLO (unknown release, tenant rules)
  /// surfaces as that typed Status; a missing socket is NotFound.
  static Result<Client> Connect(const std::string& socket_path,
                                const std::string& tenant = "",
                                const std::string& release = "");

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// What the server said at bind time.
  const WelcomeInfo& welcome() const { return welcome_; }

  /// Sends one QUERY and waits for the reply. Returns the RESULT
  /// payload — the rendered text, byte-identical to what `pclean query`
  /// prints for the same SQL over the same release. A server ERROR
  /// frame returns as the same typed Status the server raised
  /// (ResourceExhausted overdraft, InvalidArgument SQL, ...); a GOODBYE
  /// (drain, idle timeout) is FailedPrecondition; a torn reply is the
  /// reader's DataLoss.
  Result<std::string> Query(const QueryRequest& request);
  Result<std::string> Query(const std::string& sql, bool direct = false,
                            double confidence = 0.95);

  /// Polite close: BYE, await GOODBYE, shut the socket. Safe to skip —
  /// the destructor just closes the socket.
  Status Bye();

 private:
  Client(int fd, WelcomeInfo welcome);

  int fd_ = -1;
  FrameReader reader_;
  WelcomeInfo welcome_;
};

}  // namespace server
}  // namespace privateclean

#endif  // PRIVATECLEAN_SERVER_CLIENT_H_
