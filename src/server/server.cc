#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "privacy/ledger.h"
#include "server/release_cache.h"

namespace privateclean {
namespace server {

namespace {

/// Accept-loop poll granularity: how often the acceptor reaps closed
/// sessions and re-checks the stop flag.
constexpr int kAcceptTickMs = 100;

/// The bind name of a release directory: its basename, trailing
/// slashes stripped.
std::string BindName(const std::string& dir) {
  std::string path = dir;
  while (path.size() > 1 && path.back() == '/') path.pop_back();
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// The failpoint macro returns a Status from its enclosing function, so
/// the accept site gets one of its own.
Status AcceptGate(const std::string& socket_path) {
  PCLEAN_FAILPOINT("server.accept", socket_path);
  return Status::OK();
}

Status FillSocketAddress(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "socket path '" + path + "' exceeds the " +
        std::to_string(sizeof(addr->sun_path) - 1) +
        "-byte limit of Unix-domain addresses");
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return Status::OK();
}

}  // namespace

struct Server::Impl {
  explicit Impl(const ExecutionOptions& exec) : cache(exec) {}
  ~Impl() { TearDown(/*graceful=*/false); }

  ServerOptions options;
  ReleaseCache cache;
  std::optional<BudgetLedger> ledger;
  std::map<std::string, std::shared_ptr<const OpenedRelease>> releases;
  std::string default_release;
  std::unique_ptr<ThreadPool> pool;
  int listen_fd = -1;
  /// True once we own the socket-path binding; TearDown only unlinks
  /// then (a failed Start must not delete a live sibling's socket).
  bool bound = false;
  std::thread acceptor;
  std::atomic<uint64_t> queries_served{0};
  bool torn_down = false;  // owner-thread only

  mutable std::mutex mu;
  std::condition_variable closed_cv;
  std::map<uint64_t, std::unique_ptr<Session>> sessions;
  std::vector<uint64_t> reapable;
  uint64_t next_id = 1;
  uint64_t accepted = 0;
  size_t live = 0;  // sessions whose on_closed has not fired yet
  bool stop_accepting = false;

  void AcceptLoop();
  void AcceptOne(int fd);
  void OnSessionClosed(uint64_t id);
  void Reap();
  void StopAccepting();
  void TearDown(bool graceful);
};

void Server::Impl::AcceptLoop() {
  for (;;) {
    Reap();
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stop_accepting) return;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, kAcceptTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      // Listener unusable; Drain/TearDown still cleans up.
      std::fprintf(stderr,
                   "pclean serve: poll on '%s' failed (%s); no further "
                   "sessions will be accepted\n",
                   options.socket_path.c_str(), std::strerror(errno));
      return;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion under load is transient: that connection
        // attempt is lost, but the listener must live on — exiting here
        // would leave a live-looking server that accepts nobody.
        std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptTickMs));
        continue;
      }
      std::fprintf(stderr,
                   "pclean serve: accept on '%s' failed (%s); no further "
                   "sessions will be accepted\n",
                   options.socket_path.c_str(), std::strerror(errno));
      return;
    }
    // An injected accept failure models fd exhaustion or a dying
    // listener: that one connection is dropped, the loop lives on.
    if (!AcceptGate(options.socket_path).ok()) {
      ::close(fd);
      continue;
    }
    AcceptOne(fd);
  }
}

void Server::Impl::AcceptOne(int fd) {
  SessionContext ctx;
  ctx.pool = pool.get();
  ctx.ledger = ledger ? &*ledger : nullptr;
  ctx.releases = &releases;
  ctx.default_release = default_release;
  ctx.query_exec = options.query_exec;
  ctx.idle_timeout_ms = options.idle_timeout_ms;
  ctx.queue_depth = options.queue_depth;
  ctx.queries_served = &queries_served;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (stop_accepting) {
      ::close(fd);
      return;
    }
    id = next_id++;
    ++accepted;
    ++live;
  }
  ctx.on_closed = [this, id] { OnSessionClosed(id); };
  auto session = std::make_unique<Session>(fd, id, std::move(ctx));
  Session* raw = session.get();
  {
    std::lock_guard<std::mutex> lock(mu);
    sessions.emplace(id, std::move(session));
  }
  // Start after the map insert: until Start() the session has no
  // threads, so on_closed cannot fire on an id the map lacks.
  raw->Start();
}

void Server::Impl::OnSessionClosed(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu);
  reapable.push_back(id);
  --live;
  closed_cv.notify_all();
}

void Server::Impl::Reap() {
  std::vector<std::unique_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (uint64_t id : reapable) {
      auto it = sessions.find(id);
      if (it == sessions.end()) continue;
      dead.push_back(std::move(it->second));
      sessions.erase(it);
    }
    reapable.clear();
  }
  // Destruction outside mu: ~Session joins the (already exited) reader
  // thread and closes the fd, neither of which needs the server lock.
  dead.clear();
}

void Server::Impl::StopAccepting() {
  {
    std::lock_guard<std::mutex> lock(mu);
    stop_accepting = true;
  }
  if (acceptor.joinable()) acceptor.join();
}

void Server::Impl::TearDown(bool graceful) {
  if (torn_down) return;
  StopAccepting();
  // The acceptor is joined: nobody inserts sessions or reaps
  // concurrently from here on.
  std::vector<Session*> open_sessions;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [id, session] : sessions) {
      if (!session->closed()) open_sessions.push_back(session.get());
    }
  }
  if (graceful) {
    for (Session* session : open_sessions) session->BeginDrain();
    std::unique_lock<std::mutex> lock(mu);
    closed_cv.wait_for(lock, std::chrono::milliseconds(
                                 options.drain_grace_ms < 0
                                     ? 0
                                     : options.drain_grace_ms),
                       [&] { return live == 0; });
  }
  // Hard-stop the stragglers (all of them, when not graceful). Abort
  // guarantees progress — queues are dropped and sockets shut — so the
  // unbounded wait below terminates.
  for (Session* session : open_sessions) session->Abort();
  {
    std::unique_lock<std::mutex> lock(mu);
    closed_cv.wait(lock, [&] { return live == 0; });
  }
  Reap();
  {
    std::lock_guard<std::mutex> lock(mu);
    sessions.clear();
  }
  // Every session closed before this point, so no strand task remains
  // and the pool drains instantly.
  pool.reset();
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }
  if (bound) ::unlink(options.socket_path.c_str());
  torn_down = true;
}

Result<Server> Server::Start(const ServerOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("serve needs a socket path");
  }
  if (options.release_dirs.empty()) {
    return Status::InvalidArgument(
        "serve needs at least one release directory");
  }
  sockaddr_un addr;
  PCLEAN_RETURN_NOT_OK(FillSocketAddress(options.socket_path, &addr));

  auto impl = std::make_unique<Impl>(options.query_exec);
  impl->options = options;
  for (const std::string& dir : options.release_dirs) {
    std::string name = BindName(dir);
    if (name.empty()) {
      return Status::InvalidArgument("release directory '" + dir +
                                     "' has no usable basename");
    }
    if (impl->releases.count(name) > 0) {
      return Status::InvalidArgument(
          "two release directories share the bind name '" + name +
          "': sessions could not tell them apart in HELLO");
    }
    PCLEAN_ASSIGN_OR_RETURN(auto release, impl->cache.Acquire(dir));
    impl->releases.emplace(std::move(name), std::move(release));
  }
  impl->default_release = BindName(options.release_dirs.front());
  if (!options.ledger_dir.empty()) {
    PCLEAN_ASSIGN_OR_RETURN(BudgetLedger ledger,
                            BudgetLedger::Open(options.ledger_dir));
    impl->ledger.emplace(std::move(ledger));
  }

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: " +
                           std::string(std::strerror(errno)));
  }
  impl->listen_fd = fd;  // Impl's TearDown closes it on any exit below

  // Two servers starting concurrently can both hit EADDRINUSE on a
  // stale socket, both find the liveness probe dead, and both
  // unlink+bind — the second silently deleting the first's fresh
  // socket. An flock on a sibling lock file serializes the whole
  // bind → probe → takeover → listen sequence (the probe is only
  // conclusive once the winner has listened). The lock file itself is
  // never unlinked: removing it would reopen the same race.
  struct LockFile {
    int fd = -1;
    ~LockFile() {
      if (fd >= 0) ::close(fd);  // close releases the flock
    }
  } bind_lock;
  bind_lock.fd = ::open((options.socket_path + ".lock").c_str(),
                        O_CREAT | O_RDWR | O_CLOEXEC, 0600);
  if (bind_lock.fd < 0) {
    return Status::IOError("open '" + options.socket_path +
                           ".lock' failed: " + std::strerror(errno));
  }
  if (::flock(bind_lock.fd, LOCK_EX) != 0) {
    return Status::IOError("flock '" + options.socket_path +
                           ".lock' failed: " + std::strerror(errno));
  }

  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EADDRINUSE) {
      return Status::IOError("bind '" + options.socket_path +
                             "' failed: " + std::strerror(errno));
    }
    // The path exists. Probe it: a live server accepts the connection
    // (refuse to usurp it); a dead one left a stale file (replace it).
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      return Status::IOError("socket failed: " +
                             std::string(std::strerror(errno)));
    }
    int connected =
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(probe);
    if (connected == 0) {
      return Status::FailedPrecondition("another server is live on '" +
                                        options.socket_path + "'");
    }
    if (::unlink(options.socket_path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("unlink stale socket '" + options.socket_path +
                             "' failed: " + std::strerror(errno));
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return Status::IOError("bind '" + options.socket_path +
                             "' failed: " + std::strerror(errno));
    }
  }
  impl->bound = true;
  if (::listen(fd, 64) != 0) {
    return Status::IOError("listen on '" + options.socket_path +
                           "' failed: " + std::strerror(errno));
  }

  ExecutionOptions pool_exec;
  pool_exec.num_threads =
      options.pool_threads > 0 ? static_cast<size_t>(options.pool_threads)
                               : 0;
  impl->pool = std::make_unique<ThreadPool>(pool_exec.EffectiveThreads());
  impl->acceptor = std::thread([raw = impl.get()] { raw->AcceptLoop(); });
  return Server(std::move(impl));
}

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;
Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;

const std::string& Server::socket_path() const {
  return impl_->options.socket_path;
}

Status Server::Drain() {
  if (impl_ == nullptr) return Status::OK();
  PCLEAN_FAILPOINT("server.drain", impl_->options.socket_path);
  impl_->TearDown(/*graceful=*/true);
  return Status::OK();
}

uint64_t Server::sessions_accepted() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->accepted;
}

size_t Server::sessions_live() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->live;
}

uint64_t Server::queries_served() const {
  return impl_->queries_served.load(std::memory_order_relaxed);
}

}  // namespace server
}  // namespace privateclean
