#include "server/release_cache.h"

#include "core/release.h"
#include "table/schema.h"

namespace privateclean {
namespace server {

Result<std::shared_ptr<const OpenedRelease>> ReleaseCache::Acquire(
    const std::string& dir) {
  // The lock spans the open: two sessions racing to bind the same cold
  // release wait on one open instead of parsing the directory twice.
  // Opens happen at session bind (rare next to queries), so serializing
  // them is the simple correct choice.
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(dir); it != entries_.end()) {
    if (auto shared = it->second.lock()) return shared;
  }
  PCLEAN_ASSIGN_OR_RETURN(PrivateTable table, OpenRelease(dir, exec_));
  // Eagerly build the provenance graph of every discrete attribute.
  // PrivateTable caches graphs lazily under no lock, so a shared table
  // must have every graph a read-only query can reach built before the
  // first concurrent session touches it.
  const Schema& schema = table.relation().schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind != AttributeKind::kDiscrete) continue;
    PCLEAN_RETURN_NOT_OK(table.ProvenanceFor(field.name, exec_).status());
  }
  std::string relation = table.metadata().relation_name;
  auto shared = std::make_shared<const OpenedRelease>(dir, std::move(table),
                                                      std::move(relation));
  entries_[dir] = shared;
  ++opens_;
  return std::shared_ptr<const OpenedRelease>(shared);
}

size_t ReleaseCache::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [dir, weak] : entries_) {
    if (!weak.expired()) ++live;
  }
  return live;
}

uint64_t ReleaseCache::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

}  // namespace server
}  // namespace privateclean
