#include "server/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <utility>

#include "core/admission.h"
#include "core/sql_execution.h"

namespace privateclean {
namespace server {

namespace {

/// Reader poll granularity: how often a blocked reader re-checks
/// drain/abort flags and advances the idle clock.
constexpr int kReaderTickMs = 200;

}  // namespace

Session::Session(int fd, uint64_t id, SessionContext context)
    : id_(id), context_(std::move(context)), fd_(fd) {}

Session::~Session() {
  Abort();
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

void Session::Start() {
  reader_ = std::thread([this] {
    ReaderLoop();
    std::function<void()> on_closed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reader_exited_ = true;
      on_closed = ClaimFinishLocked();
    }
    if (on_closed) on_closed();
  });
}

SessionState Session::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool Session::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finish_claimed_;
}

void Session::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || aborted_ || state_ == SessionState::kClosed) return;
  draining_ = true;
  state_ = SessionState::kDraining;
  // Wake the reader out of its poll: after SHUT_RD every read returns
  // EOF, the reader enqueues kDrain behind whatever is already queued,
  // and the strand says GOODBYE after the last queued answer.
  ::shutdown(fd_, SHUT_RD);
}

void Session::Abort() {
  std::function<void()> on_closed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!aborted_) {
      aborted_ = true;
      queue_.clear();  // dropped unanswered, by contract
      if (state_ != SessionState::kClosed) {
        state_ = SessionState::kClosed;
        ::shutdown(fd_, SHUT_RDWR);
      }
      space_cv_.notify_all();
    }
    on_closed = ClaimFinishLocked();
  }
  if (on_closed) on_closed();
}

void Session::ReaderLoop() {
  FrameReader reader(fd_);
  int idle_ms = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (aborted_ || state_ == SessionState::kClosed) return;
    }
    auto result = reader.Read(kReaderTickMs);
    bool draining;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (aborted_) return;
      draining = draining_;
    }
    if (draining) {
      // A frame read concurrently with the drain request is dropped:
      // drain answers what was already queued, nothing newer.
      Enqueue(Item{ItemKind::kDrain, Frame{}, Status::OK()});
      return;
    }
    if (!result.ok()) {
      const Status& status = result.status();
      if (FrameReader::IsReadTimeout(status)) {
        bool busy;
        {
          std::lock_guard<std::mutex> lock(mu_);
          busy = pump_scheduled_ || !queue_.empty();
        }
        if (busy) {
          // A session waiting on its own long query is not idle.
          idle_ms = 0;
          continue;
        }
        idle_ms += kReaderTickMs;
        if (context_.idle_timeout_ms > 0 &&
            idle_ms >= context_.idle_timeout_ms) {
          Enqueue(Item{ItemKind::kTimeout, Frame{}, Status::OK()});
          return;
        }
        continue;
      }
      ItemKind kind =
          status.IsDataLoss() ? ItemKind::kCorrupt : ItemKind::kReadError;
      Enqueue(Item{kind, Frame{}, status});
      return;
    }
    idle_ms = 0;
    if (!result->has_value()) {
      Enqueue(Item{ItemKind::kEof, Frame{}, Status::OK()});
      return;
    }
    Enqueue(Item{ItemKind::kFrame, std::move(**result), Status::OK()});
  }
}

void Session::Enqueue(Item item) {
  std::unique_lock<std::mutex> lock(mu_);
  if (item.kind == ItemKind::kFrame) {
    // Backpressure: a pipelining client that outruns the strand blocks
    // here (and therefore in its socket) instead of growing our memory.
    // Control items always land, so close reasons cannot deadlock.
    space_cv_.wait(lock, [&] {
      return queue_.size() < context_.queue_depth || aborted_;
    });
    if (aborted_) return;
  }
  queue_.push_back(std::move(item));
  SchedulePumpLocked();
}

void Session::SchedulePumpLocked() {
  if (pump_scheduled_ || queue_.empty()) return;
  pump_scheduled_ = true;
  context_.pool->Schedule([this] { Pump(); });
}

void Session::Pump() {
  Item item;
  bool have_item = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.empty()) {
      item = std::move(queue_.front());
      queue_.pop_front();
      have_item = true;
    }
  }
  if (have_item) {
    space_cv_.notify_one();
    Handle(std::move(item));
  }
  std::function<void()> on_closed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pump_scheduled_ = false;
    // One item per task: a busy session yields the worker between
    // requests, so it cannot starve its siblings on a small pool.
    SchedulePumpLocked();
    // The finish claim must share this critical section: with an
    // unlocked gap after pump_scheduled_ clears, the reader or Abort()
    // could claim the finish, fire on_closed, and let the server
    // destroy the session while this pool worker still needed mu_.
    on_closed = ClaimFinishLocked();
  }
  // `this` may be gone the moment the lock above is released (another
  // thread can now claim the finish): past this point, touch nothing
  // but the local copy of the callback.
  if (on_closed) on_closed();
}

void Session::Handle(Item item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == SessionState::kClosed) return;  // late item, drop
  }
  switch (item.kind) {
    case ItemKind::kFrame:
      HandleFrame(std::move(item.frame));
      return;
    case ItemKind::kTimeout:
      SendGoodbye("idle timeout");
      Close();
      return;
    case ItemKind::kCorrupt:
      // A stream that lost framing cannot be re-synchronized: surface
      // the typed DataLoss, then close.
      SendError(item.status);
      Close();
      return;
    case ItemKind::kEof:
    case ItemKind::kReadError:
      Close();
      return;
    case ItemKind::kDrain:
      SendGoodbye("server draining");
      Close();
      return;
  }
}

void Session::HandleFrame(Frame frame) {
  switch (frame.type) {
    // Bound-ness is tracked by release_ (strand-only state), not by
    // SessionState: a draining session is still bound, and its queued
    // queries are answered by contract (session.h) — gating QUERY on
    // state()==kReady would reject them with a misleading error.
    case FrameType::kHello: {
      if (release_ != nullptr) {
        SendError(Status::FailedPrecondition(
            "session is already bound: HELLO must be the first and only "
            "binding frame"));
        return;
      }
      Status status = HandleHello(frame);
      if (!status.ok()) SendError(status);
      return;
    }
    case FrameType::kQuery: {
      if (release_ == nullptr) {
        SendError(Status::FailedPrecondition(
            "QUERY before a successful HELLO: bind a tenant and release "
            "first"));
        return;
      }
      Status status = HandleQuery(frame);
      if (!status.ok()) SendError(status);
      return;
    }
    case FrameType::kBye:
      SendGoodbye("bye");
      Close();
      return;
    default:
      // Server-to-client frame types arriving from a client are a
      // protocol violation, not a query-level error: close.
      SendError(Status::InvalidArgument(
          std::string("unexpected client frame '") +
          FrameTypeToken(frame.type) + "'"));
      Close();
      return;
  }
}

Status Session::HandleHello(const Frame& frame) {
  PCLEAN_ASSIGN_OR_RETURN(HelloRequest hello, ParseHello(frame.payload));
  // Mirror the CLI's pairing rule (`--ledger` with `--tenant`): a
  // ledger-backed server admits no anonymous analyst, and a ledger-less
  // server cannot honestly charge a named one.
  if (context_.ledger != nullptr && hello.tenant.empty()) {
    return Status::InvalidArgument(
        "this server charges queries against a budget ledger: HELLO must "
        "name a tenant");
  }
  if (context_.ledger == nullptr && !hello.tenant.empty()) {
    return Status::InvalidArgument(
        "tenant '" + hello.tenant +
        "' named, but the server has no ledger: start `pclean serve` with "
        "--ledger to charge queries");
  }
  const std::string& name =
      hello.release.empty() ? context_.default_release : hello.release;
  auto it = context_.releases->find(name);
  if (it == context_.releases->end()) {
    return Status::NotFound("release '" + name + "' is not served here");
  }
  tenant_ = hello.tenant;
  release_ = it->second;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == SessionState::kAwaitHello) state_ = SessionState::kReady;
  }
  WelcomeInfo info;
  info.relation = release_->relation;
  info.rows = release_->table.size();
  Send(Frame{FrameType::kWelcome, RenderWelcome(info)});
  return Status::OK();
}

Status Session::HandleQuery(const Frame& frame) {
  PCLEAN_ASSIGN_OR_RETURN(QueryRequest request,
                          ParseQueryRequest(frame.payload));
  const PrivateTable& table = release_->table;
  std::ostringstream text;
  if (context_.ledger != nullptr) {
    // Charge-before-execute: the ε price is durable in the WAL before
    // any estimator runs. Concurrent sessions of one tenant serialize
    // on the ledger's atomic check-and-spend, so they can never jointly
    // overdraft. An overdraft surfaces as the typed ResourceExhausted.
    PCLEAN_ASSIGN_OR_RETURN(
        AdmissionTicket ticket,
        AdmitSqlQuery(*context_.ledger, tenant_, table, request.sql));
    text << RenderAdmissionLine(tenant_, ticket,
                                context_.ledger->BudgetOrZero(tenant_));
  }
  QueryOptions options;
  options.confidence = request.confidence;
  options.exec = context_.query_exec;
  if (request.direct) {
    PCLEAN_ASSIGN_OR_RETURN(
        SqlResultSet rs, ExecuteSqlQueryDirect(table, request.sql,
                                               options.exec));
    RenderSqlResultText(rs, /*direct=*/true, options.confidence, text);
  } else {
    PCLEAN_ASSIGN_OR_RETURN(SqlResultSet rs,
                            ExecuteSqlQuery(table, request.sql, options));
    RenderSqlResultText(rs, /*direct=*/false, options.confidence, text);
  }
  Send(Frame{FrameType::kResult, text.str()});
  if (context_.queries_served != nullptr) {
    context_.queries_served->fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Session::SendError(const Status& status) {
  Send(Frame{FrameType::kError, RenderStatusPayload(status)});
}

void Session::SendGoodbye(const std::string& reason) {
  Send(Frame{FrameType::kGoodbye, reason});
}

void Session::Send(const Frame& frame) {
  if (write_failed_) return;
  Status status = WriteFrame(fd_, frame);
  if (status.ok()) return;
  if (status.IsResourceExhausted() && frame.type != FrameType::kError) {
    // The frame (e.g. a huge GROUP BY RESULT) exceeds the wire cap, but
    // the connection itself is healthy: answer with the typed error and
    // keep serving. (ERROR frames are exempt to bound the recursion;
    // they are always far under the cap.)
    SendError(status);
    return;
  }
  // The peer is gone (or the write path is under fault injection):
  // nothing more can usefully be said on this socket.
  write_failed_ = true;
  Close();
}

void Session::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == SessionState::kClosed) return;
  state_ = SessionState::kClosed;
  ::shutdown(fd_, SHUT_RDWR);
  space_cv_.notify_all();
}

bool Session::FinishedLocked() const {
  return state_ == SessionState::kClosed && queue_.empty() &&
         !pump_scheduled_ && reader_exited_ && !finish_claimed_;
}

std::function<void()> Session::ClaimFinishLocked() {
  if (!FinishedLocked()) return nullptr;
  finish_claimed_ = true;
  // The claimer returns a copy of the callback and invokes it only
  // after releasing mu_: on_closed takes the server's lock, and the
  // server calls session methods (which take mu_) under that lock —
  // invoking the callback under mu_ would invert the order. The copy
  // matters too: once on_closed fires the server may destroy the
  // session, so the member std::function cannot be touched mid-call.
  return context_.on_closed;
}

}  // namespace server
}  // namespace privateclean
