#ifndef PRIVATECLEAN_PROVENANCE_PROVENANCE_GRAPH_H_
#define PRIVATECLEAN_PROVENANCE_PROVENANCE_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {

/// Bipartite value-provenance graph for one discrete attribute
/// (paper §6.2 and §7.1).
///
/// Left nodes L are the distinct values of the private relation *before*
/// cleaning (the "dirty" domain — identical to the randomization domain
/// by domain preservation); right nodes M are the distinct values after
/// cleaning. An edge (l, m) with weight w_lm carries the fraction of
/// rows holding dirty value l that were mapped to clean value m:
///
///   w_lm = |rows with dirty value l and clean value m| /
///          |rows with dirty value l|
///
/// Single-attribute deterministic cleaning yields a fork-free graph with
/// all weights 1 (§6); multi-attribute cleaning can fork a dirty value
/// across several clean values with fractional weights (§7, Example 6).
///
/// Storage follows §6.4/§7.3: a hash map clean value → incident dirty
/// edges, so a predicate touching l' clean values is answered in O(l')
/// plus the size of their edge lists.
class ProvenanceGraph {
 public:
  /// Builds the graph from a snapshot of the attribute taken before
  /// cleaning and its current (cleaned) contents. `dirty_domain` is the
  /// randomization-time domain and fixes N = |L| even if some value lost
  /// all of its rows during later operations. The two columns must have
  /// equal length, and every snapshot value must belong to
  /// `dirty_domain`.
  ///
  /// Construction is sharded per `exec` (common/thread_pool.h) in two
  /// row passes — clean-domain discovery, then (dirty, clean) edge
  /// counting — with per-shard partials merged in shard index order, so
  /// the graph (domain order, edge order, weights) is identical at every
  /// thread count.
  static Result<ProvenanceGraph> Build(const Column& dirty_snapshot,
                                       const Column& clean_current,
                                       const Domain& dirty_domain,
                                       const ExecutionOptions& exec = {});

  /// N: number of distinct dirty values.
  size_t num_dirty_values() const { return dirty_domain_.size(); }

  /// |M|: number of distinct clean values.
  size_t num_clean_values() const { return clean_domain_.size(); }

  /// Total number of edges.
  size_t num_edges() const { return num_edges_; }

  /// True iff no dirty value maps to more than one clean value
  /// (the §6 single-attribute regime; weights are then all 1).
  bool is_fork_free() const { return fork_free_; }

  /// The dirty / clean domains.
  const Domain& dirty_domain() const { return dirty_domain_; }
  const Domain& clean_domain() const { return clean_domain_; }

  /// Weighted dirty-side selectivity of a predicate (paper §7.2):
  ///   l = Σ_{l ∈ L, m ∈ M_pred} w_lm
  /// where `clean_values` is M_pred (a subset of the clean domain; values
  /// not in the clean domain contribute nothing). For fork-free graphs
  /// this equals the §6.3 vertex count |L_pred|.
  double WeightedSelectivity(const std::vector<Value>& clean_values) const;

  /// Unweighted dirty-side selectivity: |L_pred|, the number of dirty
  /// values with at least one edge into M_pred. This is the §6.3 cut; on
  /// forked graphs it over-counts (the PC-U baseline in Figure 7).
  size_t UnweightedSelectivity(const std::vector<Value>& clean_values) const;

  /// The parent set L_pred of a clean-value predicate.
  std::vector<Value> ParentSet(const std::vector<Value>& clean_values) const;

  /// Merge rate of a predicate (paper §6.1): l/N − l'/N', the change in
  /// distinct-value selectivity caused by cleaning.
  double MergeRate(const std::vector<Value>& clean_values) const;

  /// Edge weight w_lm; 0 when the edge is absent.
  double EdgeWeight(const Value& dirty, const Value& clean) const;

 private:
  struct Edge {
    size_t dirty_index;  ///< Into dirty_domain_.
    double weight;
  };

  Domain dirty_domain_;
  Domain clean_domain_;
  /// clean value index -> incident edges.
  std::vector<std::vector<Edge>> edges_by_clean_;
  size_t num_edges_ = 0;
  bool fork_free_ = true;
  /// Out-degree of each dirty value (for fork detection / diagnostics).
  std::vector<size_t> dirty_out_degree_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_PROVENANCE_PROVENANCE_GRAPH_H_
