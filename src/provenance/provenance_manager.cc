#include "provenance/provenance_manager.h"

namespace privateclean {

Result<ProvenanceManager> ProvenanceManager::Create(
    const Table& private_table,
    const std::unordered_map<std::string, Domain>& dirty_domains) {
  ProvenanceManager manager;
  const Schema& schema = private_table.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind != AttributeKind::kDiscrete) continue;
    Domain domain;
    if (auto it = dirty_domains.find(field.name);
        it != dirty_domains.end()) {
      domain = it->second;
    } else {
      PCLEAN_ASSIGN_OR_RETURN(
          domain, Domain::FromColumn(private_table, field.name,
                                     /*include_null=*/true));
    }
    manager.snapshots_.emplace(
        field.name, Snapshot{private_table.column(i), std::move(domain)});
  }
  return manager;
}

Status ProvenanceManager::RegisterDerivedAttribute(const std::string& name,
                                                   const std::string& source) {
  if (snapshots_.count(name) > 0 || derived_sources_.count(name) > 0) {
    return Status::AlreadyExists("attribute '" + name +
                                 "' already has provenance");
  }
  // The source must itself resolve (possibly through another derivation).
  PCLEAN_ASSIGN_OR_RETURN(const Snapshot* snap, ResolveSource(source));
  (void)snap;
  // Path-compress: anchor directly to the snapshotted attribute.
  std::string anchor = source;
  if (auto it = derived_sources_.find(source);
      it != derived_sources_.end()) {
    anchor = it->second;
  }
  derived_sources_.emplace(name, std::move(anchor));
  return Status::OK();
}

bool ProvenanceManager::Tracks(const std::string& attribute) const {
  return snapshots_.count(attribute) > 0 ||
         derived_sources_.count(attribute) > 0;
}

Result<const ProvenanceManager::Snapshot*> ProvenanceManager::ResolveSource(
    const std::string& attribute) const {
  std::string name = attribute;
  if (auto it = derived_sources_.find(name); it != derived_sources_.end()) {
    name = it->second;
  }
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no provenance snapshot for attribute '" +
                            attribute + "'");
  }
  return &it->second;
}

Result<std::string> ProvenanceManager::AnchorOf(
    const std::string& attribute) const {
  if (snapshots_.count(attribute) > 0) return attribute;
  if (auto it = derived_sources_.find(attribute);
      it != derived_sources_.end()) {
    return it->second;
  }
  return Status::NotFound("no provenance snapshot for attribute '" +
                          attribute + "'");
}

Result<const Domain*> ProvenanceManager::DirtyDomain(
    const std::string& attribute) const {
  PCLEAN_ASSIGN_OR_RETURN(const Snapshot* snap, ResolveSource(attribute));
  return &snap->domain;
}

Result<ProvenanceGraph> ProvenanceManager::GraphFor(
    const Table& current, const std::string& attribute,
    const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(const Snapshot* snap, ResolveSource(attribute));
  PCLEAN_ASSIGN_OR_RETURN(const Column* clean_col,
                          current.ColumnByName(attribute));
  return ProvenanceGraph::Build(snap->column, *clean_col, snap->domain, exec);
}

}  // namespace privateclean
