#ifndef PRIVATECLEAN_PROVENANCE_PROVENANCE_MANAGER_H_
#define PRIVATECLEAN_PROVENANCE_PROVENANCE_MANAGER_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "provenance/provenance_graph.h"
#include "table/table.h"

namespace privateclean {

/// Tracks value provenance across an arbitrary composition of cleaning
/// operations (paper §6–§7: one graph per discrete attribute).
///
/// The manager snapshots every discrete column of the private relation V
/// at creation time (the "dirty" side). After any sequence of cleaners
/// has mutated the relation, `GraphFor` reconstructs the bipartite graph
/// for an attribute in one O(S) pass over (snapshot, current) pairs. This
/// composes automatically: no matter how many Merge/Transform operations
/// ran, the graph always maps the original dirty domain to the *final*
/// clean domain, which is exactly what the estimators need.
///
/// Attributes created by Extract cleaners are registered with
/// `RegisterDerivedAttribute(new, source)`; their graphs map the source
/// attribute's dirty domain to the new attribute's values.
class ProvenanceManager {
 public:
  /// An empty manager tracking nothing (placeholder until Create()).
  ProvenanceManager() = default;

  /// Snapshots all discrete columns of `private_table`. Optional
  /// `dirty_domains` (keyed by attribute) override the domains computed
  /// from the snapshot itself — pass the randomization-time domains from
  /// GRR metadata so N matches the mechanism even if domain preservation
  /// was disabled.
  static Result<ProvenanceManager> Create(
      const Table& private_table,
      const std::unordered_map<std::string, Domain>& dirty_domains = {});

  /// Declares that attribute `name` was created by an Extract over
  /// `source` (a snapshotted discrete attribute).
  Status RegisterDerivedAttribute(const std::string& name,
                                  const std::string& source);

  /// True iff provenance is tracked for this attribute (directly or via
  /// a registered derivation).
  bool Tracks(const std::string& attribute) const;

  /// The dirty (randomization-time) domain backing `attribute`.
  Result<const Domain*> DirtyDomain(const std::string& attribute) const;

  /// The snapshotted attribute anchoring `attribute`'s provenance:
  /// itself for original discrete attributes, the registered source for
  /// Extract-derived ones.
  Result<std::string> AnchorOf(const std::string& attribute) const;

  /// Builds the provenance graph for `attribute` against the current
  /// contents of `current` (the cleaned private relation). The build is
  /// sharded per `exec` (see ProvenanceGraph::Build); the graph is
  /// identical at every thread count.
  Result<ProvenanceGraph> GraphFor(const Table& current,
                                   const std::string& attribute,
                                   const ExecutionOptions& exec = {}) const;

 private:
  struct Snapshot {
    Column column;
    Domain domain;
  };

  /// Resolves an attribute to the snapshot that anchors it.
  Result<const Snapshot*> ResolveSource(const std::string& attribute) const;

  std::unordered_map<std::string, Snapshot> snapshots_;
  std::unordered_map<std::string, std::string> derived_sources_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_PROVENANCE_PROVENANCE_MANAGER_H_
