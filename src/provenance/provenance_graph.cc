#include "provenance/provenance_graph.h"

#include <map>

namespace privateclean {

Result<ProvenanceGraph> ProvenanceGraph::Build(const Column& dirty_snapshot,
                                               const Column& clean_current,
                                               const Domain& dirty_domain) {
  if (dirty_snapshot.size() != clean_current.size()) {
    return Status::InvalidArgument(
        "dirty snapshot and clean column must have equal length");
  }
  if (dirty_domain.empty()) {
    return Status::InvalidArgument("dirty domain must be non-empty");
  }

  ProvenanceGraph graph;
  graph.dirty_domain_ = dirty_domain;

  // Pass 1: the clean domain, in first-appearance order.
  std::vector<Value> clean_values;
  clean_values.reserve(clean_current.size());
  for (size_t r = 0; r < clean_current.size(); ++r) {
    clean_values.push_back(clean_current.ValueAt(r));
  }
  graph.clean_domain_ = Domain::FromValues(clean_values);

  // Pass 2: per (dirty, clean) row counts and per-dirty totals.
  size_t n_dirty = dirty_domain.size();
  size_t n_clean = graph.clean_domain_.size();
  std::vector<size_t> dirty_totals(n_dirty, 0);
  // (dirty, clean) pair -> row count; keyed compactly by index pair.
  std::unordered_map<uint64_t, size_t> pair_counts;
  for (size_t r = 0; r < dirty_snapshot.size(); ++r) {
    auto d_idx = dirty_domain.IndexOf(dirty_snapshot.ValueAt(r));
    if (!d_idx.ok()) {
      return Status::InvalidArgument(
          "snapshot value '" + dirty_snapshot.ValueAt(r).ToString() +
          "' at row " + std::to_string(r) + " is not in the dirty domain");
    }
    size_t c_idx = graph.clean_domain_.IndexOf(clean_current.ValueAt(r))
                       .ValueOrDie();
    ++dirty_totals[*d_idx];
    ++pair_counts[static_cast<uint64_t>(*d_idx) * n_clean + c_idx];
  }

  // Assemble edges. Iterate in deterministic order for reproducibility.
  std::map<uint64_t, size_t> ordered(pair_counts.begin(), pair_counts.end());
  graph.edges_by_clean_.resize(n_clean);
  graph.dirty_out_degree_.assign(n_dirty, 0);
  for (const auto& [key, count] : ordered) {
    size_t d_idx = static_cast<size_t>(key / n_clean);
    size_t c_idx = static_cast<size_t>(key % n_clean);
    double weight =
        static_cast<double>(count) / static_cast<double>(dirty_totals[d_idx]);
    graph.edges_by_clean_[c_idx].push_back(Edge{d_idx, weight});
    ++graph.dirty_out_degree_[d_idx];
    ++graph.num_edges_;
    if (graph.dirty_out_degree_[d_idx] > 1) graph.fork_free_ = false;
  }
  return graph;
}

double ProvenanceGraph::WeightedSelectivity(
    const std::vector<Value>& clean_values) const {
  double l = 0.0;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;  // Predicate value absent from the relation.
    for (const Edge& e : edges_by_clean_[*c_idx]) l += e.weight;
  }
  return l;
}

size_t ProvenanceGraph::UnweightedSelectivity(
    const std::vector<Value>& clean_values) const {
  std::vector<uint8_t> seen(dirty_domain_.size(), 0);
  size_t count = 0;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;
    for (const Edge& e : edges_by_clean_[*c_idx]) {
      if (!seen[e.dirty_index]) {
        seen[e.dirty_index] = 1;
        ++count;
      }
    }
  }
  return count;
}

std::vector<Value> ProvenanceGraph::ParentSet(
    const std::vector<Value>& clean_values) const {
  std::vector<uint8_t> seen(dirty_domain_.size(), 0);
  std::vector<Value> parents;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;
    for (const Edge& e : edges_by_clean_[*c_idx]) {
      if (!seen[e.dirty_index]) {
        seen[e.dirty_index] = 1;
        parents.push_back(dirty_domain_.value(e.dirty_index));
      }
    }
  }
  return parents;
}

double ProvenanceGraph::MergeRate(
    const std::vector<Value>& clean_values) const {
  double n = static_cast<double>(dirty_domain_.size());
  double n_clean = static_cast<double>(clean_domain_.size());
  double l = WeightedSelectivity(clean_values);
  double l_clean = 0.0;
  for (const Value& m : clean_values) {
    if (clean_domain_.Contains(m)) l_clean += 1.0;
  }
  return l / n - l_clean / n_clean;
}

double ProvenanceGraph::EdgeWeight(const Value& dirty,
                                   const Value& clean) const {
  auto c_idx = clean_domain_.IndexOf(clean);
  auto d_idx = dirty_domain_.IndexOf(dirty);
  if (!c_idx.ok() || !d_idx.ok()) return 0.0;
  for (const Edge& e : edges_by_clean_[*c_idx]) {
    if (e.dirty_index == *d_idx) return e.weight;
  }
  return 0.0;
}

}  // namespace privateclean
