#include "provenance/provenance_graph.h"

#include <map>

#include "common/failpoint.h"
#include "common/thread_pool.h"

namespace privateclean {

namespace {

/// Per-shard partial of the clean-domain discovery pass: the shard's
/// distinct values in local first-appearance order with occurrence
/// counts. Concatenating the partials in shard index order and deduping
/// reproduces the global first-appearance order exactly.
struct CleanDomainPartial {
  std::vector<Value> values;
  std::vector<size_t> counts;
  std::unordered_map<Value, size_t, ValueHash> local_index;

  void Add(const Value& v) {
    auto [it, inserted] = local_index.emplace(v, values.size());
    if (inserted) {
      values.push_back(v);
      counts.push_back(1);
    } else {
      ++counts[it->second];
    }
  }
};

/// Per-shard partial of the edge-counting pass.
struct EdgeCountPartial {
  std::vector<size_t> dirty_totals;
  std::unordered_map<uint64_t, size_t> pair_counts;
};

/// Code-indexed variant of CleanDomainPartial for dictionary-encoded
/// columns: per-slot counts with vector indexing (slot = dictionary
/// code, with one extra slot for null), no per-row hashing. `order`
/// preserves the shard's first-appearance sequence so the shard-order
/// merge reproduces the global first-appearance order exactly.
struct CodeDomainPartial {
  std::vector<size_t> counts;
  std::vector<size_t> order;

  void Add(size_t slot) {
    if (counts[slot]++ == 0) order.push_back(slot);
  }
};

/// Domain index of every dictionary slot of `column` (slot dict.size() =
/// null), resolved once per distinct value; kMissing for values outside
/// `domain`.
constexpr uint32_t kMissingIndex = UINT32_MAX;

std::vector<uint32_t> SlotDomainIndices(const Column& column,
                                        const Domain& domain) {
  const StringDictionary& dict = column.dictionary();
  std::vector<uint32_t> slot_to_index(dict.size() + 1, kMissingIndex);
  for (uint32_t c = 0; c < dict.size(); ++c) {
    auto idx = domain.IndexOf(Value(std::string(dict.At(c))));
    if (idx.ok()) slot_to_index[c] = static_cast<uint32_t>(*idx);
  }
  if (auto idx = domain.IndexOf(Value::Null()); idx.ok()) {
    slot_to_index[dict.size()] = static_cast<uint32_t>(*idx);
  }
  return slot_to_index;
}

}  // namespace

Result<ProvenanceGraph> ProvenanceGraph::Build(const Column& dirty_snapshot,
                                               const Column& clean_current,
                                               const Domain& dirty_domain,
                                               const ExecutionOptions& exec) {
  if (dirty_snapshot.size() != clean_current.size()) {
    return Status::InvalidArgument(
        "dirty snapshot and clean column must have equal length");
  }
  if (dirty_domain.empty()) {
    return Status::InvalidArgument("dirty domain must be non-empty");
  }
  // Injection point after argument validation, before the sharded
  // passes: a fault here models the lazy graph build failing when a
  // query first touches a cleaned attribute.
  PCLEAN_FAILPOINT("provenance.graph.build", "");

  ProvenanceGraph graph;
  graph.dirty_domain_ = dirty_domain;

  const size_t rows = clean_current.size();
  const size_t shards = ShardCountForRows(rows);
  const bool dictionary_encoded =
      dirty_snapshot.type() == ValueType::kString &&
      clean_current.type() == ValueType::kString;

  // Pass 1: the clean domain, in first-appearance order. Shards collect
  // local (value, count) runs; the sequential shard-order merge rebuilds
  // the global first-appearance order and frequencies. Dictionary-encoded
  // columns tally per-code with vector indexing instead of hashing boxed
  // values; both produce identical domains.
  if (dictionary_encoded) {
    const StringDictionary& clean_dict = clean_current.dictionary();
    const uint32_t* clean_codes = clean_current.codes().data();
    const size_t null_slot = clean_dict.size();
    std::vector<CodeDomainPartial> domain_partials(shards);
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          CodeDomainPartial& part = domain_partials[shard];
          part.counts.assign(null_slot + 1, 0);
          for (size_t r = begin; r < end; ++r) {
            part.Add(clean_codes[r] == kNullCode ? null_slot
                                                 : clean_codes[r]);
          }
          return Status::OK();
        }));
    std::vector<Value> merged_values;
    std::vector<size_t> merged_counts;
    for (const CodeDomainPartial& part : domain_partials) {
      for (size_t slot : part.order) {
        merged_values.push_back(
            slot == null_slot ? Value::Null()
                              : Value(std::string(clean_dict.At(
                                    static_cast<uint32_t>(slot)))));
        merged_counts.push_back(part.counts[slot]);
      }
    }
    graph.clean_domain_ =
        Domain::FromValueCounts(merged_values, merged_counts);
  } else {
    std::vector<CleanDomainPartial> domain_partials(shards);
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          CleanDomainPartial& part = domain_partials[shard];
          for (size_t r = begin; r < end; ++r) {
            part.Add(clean_current.ValueAt(r));
          }
          return Status::OK();
        }));
    std::vector<Value> merged_values;
    std::vector<size_t> merged_counts;
    for (const CleanDomainPartial& part : domain_partials) {
      merged_values.insert(merged_values.end(), part.values.begin(),
                           part.values.end());
      merged_counts.insert(merged_counts.end(), part.counts.begin(),
                           part.counts.end());
    }
    graph.clean_domain_ = Domain::FromValueCounts(merged_values,
                                                  merged_counts);
  }

  // Pass 2: per (dirty, clean) row counts and per-dirty totals, sharded
  // with integer partials summed in shard index order. For dictionary
  // columns the domain memberships are resolved once per distinct value
  // (SlotDomainIndices), making the row loop two array reads per side.
  size_t n_dirty = dirty_domain.size();
  size_t n_clean = graph.clean_domain_.size();
  std::vector<EdgeCountPartial> edge_partials(shards);
  if (dictionary_encoded) {
    const std::vector<uint32_t> dirty_slot_index =
        SlotDomainIndices(dirty_snapshot, dirty_domain);
    const std::vector<uint32_t> clean_slot_index =
        SlotDomainIndices(clean_current, graph.clean_domain_);
    const uint32_t* dirty_codes = dirty_snapshot.codes().data();
    const uint32_t* clean_codes = clean_current.codes().data();
    const size_t dirty_null_slot = dirty_snapshot.dictionary().size();
    const size_t clean_null_slot = clean_current.dictionary().size();
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          EdgeCountPartial& part = edge_partials[shard];
          part.dirty_totals.assign(n_dirty, 0);
          for (size_t r = begin; r < end; ++r) {
            size_t d_slot = dirty_codes[r] == kNullCode ? dirty_null_slot
                                                        : dirty_codes[r];
            uint32_t d_idx = dirty_slot_index[d_slot];
            if (d_idx == kMissingIndex) {
              return Status::InvalidArgument(
                  "snapshot value '" +
                  dirty_snapshot.ValueAt(r).ToString() + "' at row " +
                  std::to_string(r) + " is not in the dirty domain");
            }
            size_t c_slot = clean_codes[r] == kNullCode ? clean_null_slot
                                                        : clean_codes[r];
            // Always present: the clean domain was built from this
            // column in pass 1.
            uint32_t c_idx = clean_slot_index[c_slot];
            ++part.dirty_totals[d_idx];
            ++part.pair_counts[static_cast<uint64_t>(d_idx) * n_clean +
                               c_idx];
          }
          return Status::OK();
        }));
  } else {
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          EdgeCountPartial& part = edge_partials[shard];
          part.dirty_totals.assign(n_dirty, 0);
          for (size_t r = begin; r < end; ++r) {
            auto d_idx = dirty_domain.IndexOf(dirty_snapshot.ValueAt(r));
            if (!d_idx.ok()) {
              return Status::InvalidArgument(
                  "snapshot value '" + dirty_snapshot.ValueAt(r).ToString() +
                  "' at row " + std::to_string(r) +
                  " is not in the dirty domain");
            }
            size_t c_idx = graph.clean_domain_.IndexOf(clean_current.ValueAt(r))
                               .ValueOrDie();
            ++part.dirty_totals[*d_idx];
            ++part.pair_counts[static_cast<uint64_t>(*d_idx) * n_clean + c_idx];
          }
          return Status::OK();
        }));
  }

  std::vector<size_t> dirty_totals(n_dirty, 0);
  // (dirty, clean) pair -> row count, in deterministic key order for
  // reproducible edge assembly.
  std::map<uint64_t, size_t> ordered;
  for (const EdgeCountPartial& part : edge_partials) {
    if (part.dirty_totals.empty()) continue;  // Shard never ran (0 rows).
    for (size_t d = 0; d < n_dirty; ++d) dirty_totals[d] += part.dirty_totals[d];
    for (const auto& [key, count] : part.pair_counts) {
      ordered[key] += count;
    }
  }

  // Assemble edges in deterministic key order.
  graph.edges_by_clean_.resize(n_clean);
  graph.dirty_out_degree_.assign(n_dirty, 0);
  for (const auto& [key, count] : ordered) {
    size_t d_idx = static_cast<size_t>(key / n_clean);
    size_t c_idx = static_cast<size_t>(key % n_clean);
    double weight =
        static_cast<double>(count) / static_cast<double>(dirty_totals[d_idx]);
    graph.edges_by_clean_[c_idx].push_back(Edge{d_idx, weight});
    ++graph.dirty_out_degree_[d_idx];
    ++graph.num_edges_;
    if (graph.dirty_out_degree_[d_idx] > 1) graph.fork_free_ = false;
  }
  return graph;
}

double ProvenanceGraph::WeightedSelectivity(
    const std::vector<Value>& clean_values) const {
  double l = 0.0;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;  // Predicate value absent from the relation.
    for (const Edge& e : edges_by_clean_[*c_idx]) l += e.weight;
  }
  return l;
}

size_t ProvenanceGraph::UnweightedSelectivity(
    const std::vector<Value>& clean_values) const {
  std::vector<uint8_t> seen(dirty_domain_.size(), 0);
  size_t count = 0;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;
    for (const Edge& e : edges_by_clean_[*c_idx]) {
      if (!seen[e.dirty_index]) {
        seen[e.dirty_index] = 1;
        ++count;
      }
    }
  }
  return count;
}

std::vector<Value> ProvenanceGraph::ParentSet(
    const std::vector<Value>& clean_values) const {
  std::vector<uint8_t> seen(dirty_domain_.size(), 0);
  std::vector<Value> parents;
  for (const Value& m : clean_values) {
    auto c_idx = clean_domain_.IndexOf(m);
    if (!c_idx.ok()) continue;
    for (const Edge& e : edges_by_clean_[*c_idx]) {
      if (!seen[e.dirty_index]) {
        seen[e.dirty_index] = 1;
        parents.push_back(dirty_domain_.value(e.dirty_index));
      }
    }
  }
  return parents;
}

double ProvenanceGraph::MergeRate(
    const std::vector<Value>& clean_values) const {
  double n = static_cast<double>(dirty_domain_.size());
  double n_clean = static_cast<double>(clean_domain_.size());
  double l = WeightedSelectivity(clean_values);
  double l_clean = 0.0;
  for (const Value& m : clean_values) {
    if (clean_domain_.Contains(m)) l_clean += 1.0;
  }
  return l / n - l_clean / n_clean;
}

double ProvenanceGraph::EdgeWeight(const Value& dirty,
                                   const Value& clean) const {
  auto c_idx = clean_domain_.IndexOf(clean);
  auto d_idx = dirty_domain_.IndexOf(dirty);
  if (!c_idx.ok() || !d_idx.ok()) return 0.0;
  for (const Edge& e : edges_by_clean_[*c_idx]) {
    if (e.dirty_index == *d_idx) return e.weight;
  }
  return 0.0;
}

}  // namespace privateclean
